"""Mean-shift importance sampling centered on the Eq. 8 worst-case points.

Plain Monte-Carlo needs ~ ``1/Y`` samples to see a single failing (or at
high yield, passing) sample, which is hopeless in the near-0 %/100 %
regimes the paper's ablations land in.  But the optimizer already
computes, per spec, the most likely point on the spec boundary (the
worst-case point ``s_wc`` of Eq. 8) — exactly the mean shift classic
ISLE-style importance sampling wants: sample around the boundary where
the pass/fail transition happens, then undo the shift with
likelihood-ratio weights.

Proposal: an equal-weight Gaussian **mixture** with unit covariance — one
component per usable worst-case point plus a defensive component at the
origin (which bounds the weights by the component count, taming weight
degeneracy).  Components get a balanced deterministic sample allocation,
so results are seed-reproducible and independent of worker count.  The
estimate is **self-normalized**:

    Y_hat = sum(w_j I_j) / sum(w_j),   w_j = phi(s_j) / q(s_j)

with a delta-method standard error and the effective sample size
``ESS = (sum w)^2 / sum w^2`` reported as the honesty diagnostic.  When no
sample lands in the rare region at all, the interval falls back to a
rule-of-three bound on the ESS instead of reporting a zero-width CI.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np
from scipy.special import logsumexp

from ..errors import ReproError
from ..evaluation.evaluator import Evaluator
from ..statistics.intervals import normal_interval
from ..statistics.sampling import SampleSet
from .base import SampleEvaluation, YieldEstimator
from .result import (KIND_WEIGHTED, SpecMoments, SufficientStats,
                     YieldResult)
from .shard import ShardPlan
from .telemetry import PhaseTimer, RunReport

#: Worst-case points beyond this many sigmas are not worth a mixture
#: component: the yield loss they guard is < ~1e-9 and their samples
#: would only dilute the budget.
SHIFT_BETA_MAX = 6.0

#: Two shifts closer than this (Euclidean) collapse into one component.
SHIFT_DEDUP_ATOL = 1e-6


def shifts_from_worst_case(worst_case: Mapping[str, object],
                           beta_max: float = SHIFT_BETA_MAX
                           ) -> List[np.ndarray]:
    """Extract usable mean-shift vectors from Eq. 8 worst-case results.

    Accepts any mapping to objects with ``s_wc`` / ``beta_wc`` /
    ``on_boundary`` attributes (``repro.core.worst_case.WorstCaseResult``).
    Unreachable (clamped) results and near-origin points are skipped;
    near-duplicates are merged.
    """
    shifts: List[np.ndarray] = []
    for wc in worst_case.values():
        if not getattr(wc, "on_boundary", False):
            continue
        if abs(getattr(wc, "beta_wc", np.inf)) > beta_max:
            continue
        s_wc = np.asarray(wc.s_wc, dtype=float)
        if float(np.linalg.norm(s_wc)) < 1e-9:
            continue
        if any(float(np.linalg.norm(s_wc - known)) < SHIFT_DEDUP_ATOL
               for known in shifts):
            continue
        shifts.append(s_wc)
    return shifts


class MeanShiftIS(YieldEstimator):
    """Self-normalized mixture importance sampling with worst-case shifts."""

    name = "is"

    def __init__(self, execution=None, ci_level: float = 0.95,
                 shifts: Optional[Sequence[np.ndarray]] = None,
                 include_origin: bool = True,
                 beta_max: float = SHIFT_BETA_MAX):
        super().__init__(execution=execution, ci_level=ci_level)
        self.fixed_shifts = [np.asarray(s, dtype=float) for s in shifts] \
            if shifts is not None else None
        self.include_origin = include_origin
        self.beta_max = beta_max

    # -- proposal ---------------------------------------------------------------
    def _components(self, dim: int,
                    worst_case: Optional[Mapping[str, object]]
                    ) -> List[np.ndarray]:
        if self.fixed_shifts is not None:
            shifts = list(self.fixed_shifts)
        elif worst_case:
            shifts = shifts_from_worst_case(worst_case, self.beta_max)
        else:
            shifts = []
        components = [np.zeros(dim)] if self.include_origin else []
        components.extend(shifts)
        if not components:
            raise ReproError(
                "MeanShiftIS needs at least one mixture component: pass "
                "worst_case results or explicit shifts, or keep "
                "include_origin=True")
        for mu in components:
            if mu.shape != (dim,):
                raise ReproError(
                    f"shift of shape {mu.shape} does not match the "
                    f"statistical dimension {dim}")
        return components

    @staticmethod
    def _draw(components: List[np.ndarray], n: int, dim: int,
              seed: Optional[int]) -> np.ndarray:
        """Balanced deterministic allocation: component ``i`` receives
        ``n // K`` samples (+1 for the first ``n % K``)."""
        rng = np.random.default_rng(seed)
        z = rng.standard_normal((n, dim))
        k = len(components)
        base, extra = divmod(n, k)
        row = 0
        for i, mu in enumerate(components):
            count = base + (1 if i < extra else 0)
            z[row:row + count] += mu
            row += count
        return z

    @staticmethod
    def _log_weights(matrix: np.ndarray,
                     components: List[np.ndarray]) -> np.ndarray:
        """``log(phi(s) / q(s))`` up to a constant (the self-normalized
        estimator is invariant to it)."""
        log_q = np.stack([-0.5 * np.sum((matrix - mu) ** 2, axis=1)
                          for mu in components], axis=1)
        log_p = -0.5 * np.sum(matrix ** 2, axis=1)
        return log_p - logsumexp(log_q, axis=1) + np.log(len(components))

    # -- estimation -------------------------------------------------------------
    def estimate(self, evaluator: Evaluator, d: Mapping[str, float],
                 theta_per_spec: Mapping[str, Mapping[str, float]],
                 n_samples: int = 300, seed: Optional[int] = 2001,
                 worst_case: Optional[Mapping[str, object]] = None,
                 samples: Optional[SampleSet] = None,
                 shard: Optional[ShardPlan] = None) -> YieldResult:
        """With a ``shard``, this run draws its ``SeedSequence.spawn``
        sub-stream and performs the balanced component allocation over
        its own samples only; the likelihood-ratio weights are
        per-sample functions of the (shared, deterministic) mixture, so
        shard results pool exactly.  Pass explicit ``samples`` to reuse
        a matrix (weights are still computed from the mixture)."""
        dim = evaluator.template.statistical_space.dim
        report = self._new_report(n_samples)
        with PhaseTimer(report, "draw"):
            components = self._components(dim, worst_case)
            if samples is not None:
                matrix = np.asarray(samples.matrix, dtype=float)
            elif shard is None:
                matrix = self._draw(components, n_samples, dim, seed)
            else:
                matrix = self._draw(components, shard.count(n_samples),
                                    dim, shard.seed_for(seed))
            log_w = self._log_weights(matrix, components)
        report.n_samples = matrix.shape[0]
        evaluation = self._evaluate_matrix(evaluator, d, theta_per_spec,
                                           matrix, report)
        with PhaseTimer(report, "reduce"):
            result = self._weighted_result(evaluation, log_w, report,
                                           shard=shard)
        return result

    def _weighted_result(self, evaluation: SampleEvaluation,
                         log_w: np.ndarray, report: RunReport,
                         shard: Optional[ShardPlan] = None
                         ) -> YieldResult:
        n = log_w.shape[0]
        if n == 0:
            # An empty stream (zero-width shard): no weights, no ESS, and
            # the degenerate full interval instead of max()/divide-by-zero
            # crashes on the empty arrays below.
            stats = SufficientStats(kind=KIND_WEIGHTED, n=0, successes=0,
                                    failed=0, log_shift=0.0, w_sum=0.0,
                                    w_sq_sum=0.0, w_pass_sum=0.0,
                                    w_sq_pass_sum=0.0)
            return YieldResult(
                estimator=self.name, estimate=0.0, n_samples=0,
                simulations=report.simulations, ci_low=0.0, ci_high=1.0,
                ci_level=self.ci_level, ess=0.0, failed_samples=0,
                report=report, stats=stats,
                shard_index=None if shard is None else shard.index,
                shard_total=None if shard is None else shard.total)
        log_shift = float(np.max(log_w))
        w = np.exp(log_w - log_shift)
        w_sum = float(np.sum(w))
        w_norm = w / w_sum
        ess = 1.0 / float(np.sum(w_norm ** 2))

        indicator = evaluation.indicator.astype(float)
        all_pass = bool(np.all(evaluation.indicator))
        none_pass = not np.any(evaluation.indicator)
        # Snap the degenerate cases to the exact edge (the weighted sum
        # carries float residue, e.g. 0.999...97 when every sample passes).
        if none_pass:
            estimate = 0.0
        elif all_pass:
            estimate = 1.0
        else:
            estimate = float(w_norm @ indicator)
        # Delta-method standard error of the self-normalized ratio.
        se = float(np.sqrt(np.sum((w_norm * (indicator - estimate)) ** 2)))
        ci_low, ci_high = normal_interval(estimate, se, self.ci_level)
        # Degenerate tails: with zero observed passes (or failures) the
        # delta method collapses to a zero-width interval; fall back to a
        # rule-of-three bound on the effective sample size.
        three = min(1.0, 3.0 / max(ess, 1.0))
        if none_pass:
            ci_high = max(ci_high, three)
        elif all_pass:
            ci_low = min(ci_low, 1.0 - three)

        means = {}
        stds = {}
        moments = {}
        for key, values in evaluation.spec_values.items():
            # Failed (NaN) samples keep their weight in the yield and
            # bad-fraction estimates (they fail every spec) but are
            # excluded from the performance statistics, which describe
            # the evaluable population only.
            finite = np.isfinite(values)
            w_finite = float(np.sum(w_norm[finite]))
            if w_finite > 0.0:
                w_cond = w_norm[finite] / w_finite
                mean = float(w_cond @ values[finite])
                var = float(w_cond @ (values[finite] - mean) ** 2)
            else:
                mean, var = float("nan"), 0.0
            means[key] = mean
            stds[key] = float(np.sqrt(max(var, 0.0)))
            # Shard-scale accumulators: weights exp(log_w - log_shift);
            # merge rescales shards onto a common shift before pooling.
            finite_weight = float(np.sum(w[finite]))
            moments[key] = SpecMoments(
                weight=finite_weight,
                mean=mean if w_finite > 0.0 else 0.0,
                m2=max(var, 0.0) * finite_weight,
                bad_weight=float(
                    np.sum(w[~evaluation.spec_pass[key]])))
        bad = {key: float(w_norm @ (~ok).astype(float))
               for key, ok in evaluation.spec_pass.items()}
        passing = evaluation.indicator
        stats = SufficientStats(
            kind=KIND_WEIGHTED, n=n,
            successes=int(np.count_nonzero(passing)),
            failed=int(np.count_nonzero(evaluation.failed)),
            log_shift=log_shift,
            w_sum=w_sum,
            w_sq_sum=float(np.sum(w * w)),
            w_pass_sum=float(np.sum(w[passing])),
            w_sq_pass_sum=float(np.sum(w[passing] ** 2)))
        stats.spec = moments
        return YieldResult(
            estimator=self.name, estimate=estimate, n_samples=n,
            simulations=report.simulations, ci_low=ci_low, ci_high=ci_high,
            ci_level=self.ci_level, ess=ess, bad_fraction=bad,
            performance_mean=means, performance_std=stds,
            failed_samples=stats.failed, report=report, stats=stats,
            shard_index=None if shard is None else shard.index,
            shard_total=None if shard is None else shard.total)
