"""The estimator interface and the shared sample-evaluation pipeline.

All estimators share the operational-yield semantics of Eq. 6-7: a sample
passes iff **every** spec holds *at that spec's worst-case operating
point*.  Specs sharing a worst-case corner share one simulation (the
paper's ``N*`` remark in Sec. 2), so the pipeline first groups specs by
corner, then drives the :class:`BatchExecutor` over ``n_samples x
n_corners`` evaluations, and finally turns raw performance values into
per-spec pass/fail arrays.  What an estimator adds on top is only *where
the samples come from* and *how the indicator is averaged* (plain mean,
likelihood-ratio-weighted mean, low-discrepancy mean).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..evaluation.evaluator import Evaluator
from ..spec.operating import group_by_theta, spec_key
from ..statistics.intervals import wilson_interval
from .executor import BatchExecutor, BatchOutcome, ExecutionConfig
from .result import (KIND_BINOMIAL, SpecMoments, SufficientStats,
                     YieldResult)
from .shard import ShardPlan
from .telemetry import PhaseTimer, RunReport


@dataclass
class SampleEvaluation:
    """Per-spec view of an evaluated sample matrix."""

    #: spec key -> (n,) performance values at the spec's worst-case corner
    spec_values: Dict[str, np.ndarray]
    #: spec key -> (n,) boolean pass array
    spec_pass: Dict[str, np.ndarray]
    #: (n,) boolean all-specs-pass indicator
    indicator: np.ndarray
    #: (n,) boolean mask of samples whose evaluation failed under the
    #: fault policy (NaN performance records); always counted as failing
    failed: np.ndarray
    outcome: BatchOutcome


class YieldEstimator(abc.ABC):
    """A pluggable operational-yield estimator.

    Implementations estimate ``Y_tilde`` (Eq. 6-7) at a design ``d`` given
    the per-spec worst-case operating points.  ``worst_case`` optionally
    carries the Eq. 8 worst-case *statistical* points; estimators that
    cannot use them (plain MC, QMC) ignore the argument, so one call site
    can serve every estimator.
    """

    #: short name used by the CLI/factory ("mc", "is", "qmc")
    name: str = "abstract"

    def __init__(self, execution: Optional[ExecutionConfig] = None,
                 ci_level: float = 0.95):
        self.execution = execution or ExecutionConfig()
        self.ci_level = ci_level
        #: optional persistent :class:`~repro.yieldsim.executor.PoolHandle`
        #: shared with the rest of the run (the optimizer attaches its
        #: pool here so verification reuses the same warm workers)
        self.pool = None

    @abc.abstractmethod
    def estimate(self, evaluator: Evaluator, d: Mapping[str, float],
                 theta_per_spec: Mapping[str, Mapping[str, float]],
                 n_samples: int = 300, seed: Optional[int] = 2001,
                 worst_case: Optional[Mapping[str, object]] = None,
                 shard: Optional[ShardPlan] = None) -> YieldResult:
        """Estimate the yield at ``d``; see class docstring.

        ``shard`` restricts the run to one deterministic sub-stream of
        the ``n_samples``-sized logical stream (see
        :mod:`repro.yieldsim.shard`); the result then covers
        ``shard.count(n_samples)`` samples and is mergeable with its
        sibling shards via :func:`~repro.yieldsim.shard.merge_results`.
        """

    # -- shared pipeline --------------------------------------------------------
    def _evaluate_matrix(self, evaluator: Evaluator,
                         d: Mapping[str, float],
                         theta_per_spec: Mapping[str, Mapping[str, float]],
                         matrix: np.ndarray,
                         report: RunReport) -> SampleEvaluation:
        """Evaluate all samples at all distinct worst-case corners and
        reduce to per-spec pass arrays (fills executor telemetry)."""
        template = evaluator.template
        groups = group_by_theta(theta_per_spec, template.operating_range)
        thetas: List[Mapping[str, float]] = []
        group_keys: List[List[str]] = []
        for corner, keys in groups.items():
            thetas.append(dict(theta_per_spec[keys[0]]))
            group_keys.append(keys)

        before = (evaluator.simulation_count, evaluator.request_count,
                  evaluator.cache_hits, evaluator.cache_misses)
        retried0 = getattr(evaluator, "retried_evaluations", 0)
        warm_stats = getattr(template, "warm_cache_stats", None)
        warm0 = warm_stats() if callable(warm_stats) else None
        dc_stats = getattr(template, "dc_effort_stats", None)
        dc0 = dc_stats() if callable(dc_stats) else None
        with PhaseTimer(report, "simulate"):
            outcome = BatchExecutor(self.execution, pool=self.pool).run(
                evaluator, d, thetas, matrix)

        specs = {spec_key(spec): spec for spec in template.specs}
        n = matrix.shape[0]
        spec_values: Dict[str, np.ndarray] = {}
        spec_pass: Dict[str, np.ndarray] = {}
        with PhaseTimer(report, "reduce"):
            failed = np.zeros(n, dtype=bool)
            for g, keys in enumerate(group_keys):
                for key in keys:
                    spec = specs[key]
                    values = np.fromiter(
                        (outcome.values[j][g][spec.performance]
                         for j in range(n)), dtype=float, count=n)
                    spec_values[key] = values
                    # NaN (a failed evaluation under the fault policy)
                    # compares False, i.e. counts as violating the spec.
                    spec_pass[key] = spec.sign * (values - spec.bound) >= 0.0
                    failed |= ~np.isfinite(values)
            indicator = np.ones(n, dtype=bool)
            for passes in spec_pass.values():
                indicator &= passes

        report.theta_groups = len(thetas)
        report.simulations += evaluator.simulation_count - before[0]
        report.requests += evaluator.request_count - before[1]
        report.cache_hits += evaluator.cache_hits - before[2]
        report.cache_misses += evaluator.cache_misses - before[3]
        report.backend = outcome.backend
        report.jobs = outcome.jobs
        report.chunks += outcome.chunks
        report.retried_chunks += outcome.retried_chunks
        report.timed_out_chunks += outcome.timed_out_chunks
        report.failed_samples += int(np.count_nonzero(failed))
        report.retried_evaluations += \
            getattr(evaluator, "retried_evaluations", 0) - retried0
        report.degraded_to_serial |= outcome.degraded_to_serial
        report.pool_incompatible |= outcome.pool_incompatible
        if warm0 is not None:
            # Warm-start cache effort accrued during this run (the parent
            # counters already include folded pool-worker deltas).
            from ..circuit.dc import WarmStartCache
            delta = WarmStartCache.counter_delta(warm_stats(), warm0)
            for key, value in delta.items():
                report.warm_cache[key] = \
                    report.warm_cache.get(key, 0) + value
        if dc0 is not None:
            from ..circuit.dc import DcEffort
            delta = DcEffort.counter_delta(dc_stats(), dc0)
            for key, value in delta.items():
                report.dc_effort[key] = \
                    report.dc_effort.get(key, 0) + value
        return SampleEvaluation(spec_values=spec_values,
                                spec_pass=spec_pass,
                                indicator=indicator, failed=failed,
                                outcome=outcome)

    def _new_report(self, n_samples: int) -> RunReport:
        return RunReport(estimator=self.name, n_samples=n_samples,
                         jobs=self.execution.jobs)

    def _binomial_result(self, evaluation: SampleEvaluation,
                         report: RunReport,
                         shard: Optional[ShardPlan] = None) -> YieldResult:
        """Unweighted reduction shared by OperationalMC and SobolQMC:
        mean indicator with a Wilson interval."""
        n = evaluation.indicator.shape[0]
        passes = int(np.count_nonzero(evaluation.indicator))
        ci_low, ci_high = wilson_interval(passes, n, self.ci_level)
        # Performance statistics cover the evaluable samples only: a
        # failed (NaN) record counts against the yield but carries no
        # performance value to average.
        means: Dict[str, float] = {}
        stds: Dict[str, float] = {}
        moments: Dict[str, SpecMoments] = {}
        for key, values in evaluation.spec_values.items():
            finite = values[np.isfinite(values)]
            means[key] = float(np.mean(finite)) if finite.size \
                else float("nan")
            stds[key] = float(np.std(finite, ddof=1)) \
                if finite.size > 1 else 0.0
            bad_count = float(
                np.count_nonzero(~evaluation.spec_pass[key]))
            moments[key] = SpecMoments(
                weight=float(finite.size),
                mean=means[key] if finite.size else 0.0,
                m2=float(np.sum((finite - means[key]) ** 2))
                if finite.size else 0.0,
                bad_weight=bad_count)
        # An empty batch (n == 0, e.g. a zero-width shard) carries no
        # information: estimate 0 with the degenerate full interval from
        # wilson_interval, never a division by zero.
        bad = {key: float(np.count_nonzero(~ok)) / n if n else 0.0
               for key, ok in evaluation.spec_pass.items()}
        failed = int(np.count_nonzero(evaluation.failed))
        stats = SufficientStats(
            kind=KIND_BINOMIAL, n=n, successes=passes, failed=failed,
            log_shift=0.0, w_sum=float(n), w_sq_sum=float(n),
            w_pass_sum=float(passes), w_sq_pass_sum=float(passes),
            spec=moments)
        return YieldResult(
            estimator=self.name, estimate=passes / n if n else 0.0,
            n_samples=n,
            simulations=report.simulations, ci_low=ci_low, ci_high=ci_high,
            ci_level=self.ci_level, ess=float(n), bad_fraction=bad,
            performance_mean=means, performance_std=stds,
            failed_samples=failed, report=report, stats=stats,
            shard_index=None if shard is None else shard.index,
            shard_total=None if shard is None else shard.total)
