"""Scrambled-Sobol quasi-Monte-Carlo yield estimation.

Low-discrepancy points cover the statistical space evenly, so the
indicator average converges faster than i.i.d. sampling on the smooth
yield integrands of weakly-nonlinear analog performances — typically the
winner at moderate yields (10-90 %) where the pass/fail boundary cuts
through the bulk of the distribution.  Owen scrambling keeps the
estimate unbiased and seeded.

The reported interval is the *binomial Wilson* interval, which is a
conservative upper bound for QMC: a single scrambled replicate carries no
internal variance estimate, and pretending its points were i.i.d. can
only overstate the error.  The variance benchmark measures the true
seed-to-seed spread empirically.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..evaluation.evaluator import Evaluator
from ..statistics.sampling import SampleSet
from .base import YieldEstimator
from .result import YieldResult
from .shard import ShardPlan
from .telemetry import PhaseTimer


class SobolQMC(YieldEstimator):
    """Scrambled low-discrepancy sampling via ``SampleSet.draw_sobol``."""

    name = "qmc"

    def __init__(self, execution=None, ci_level: float = 0.95,
                 scramble: bool = True):
        super().__init__(execution=execution, ci_level=ci_level)
        self.scramble = scramble

    def estimate(self, evaluator: Evaluator, d: Mapping[str, float],
                 theta_per_spec: Mapping[str, Mapping[str, float]],
                 n_samples: int = 300, seed: Optional[int] = 2001,
                 worst_case: Optional[Mapping[str, object]] = None,
                 shard: Optional[ShardPlan] = None) -> YieldResult:
        """``worst_case`` is accepted for interface uniformity and ignored.

        With a ``shard``, this run *skip-aheads* into the one scrambled
        sequence (``fast_forward``) and takes only its own consecutive
        block, so the shards together are exactly the unsharded point
        set — a k-shard merge reproduces the single run's counts."""
        report = self._new_report(n_samples)
        with PhaseTimer(report, "draw"):
            dim = evaluator.template.statistical_space.dim
            if shard is None:
                samples = SampleSet.draw_sobol(n_samples, dim, seed=seed,
                                               scramble=self.scramble)
            else:
                shard.check_seed(seed if self.scramble else 0)
                samples = SampleSet.draw_sobol(
                    shard.count(n_samples), dim, seed=seed,
                    scramble=self.scramble, skip=shard.offset(n_samples))
        report.n_samples = samples.n
        evaluation = self._evaluate_matrix(evaluator, d, theta_per_spec,
                                           samples.matrix, report)
        return self._binomial_result(evaluation, report, shard=shard)
