"""Plain operational Monte-Carlo behind the estimator interface.

This is the paper's verifier (Sec. 2, Eq. 6-7; N = 300 between optimizer
iterations) refactored onto the yieldsim pipeline: identical draws,
identical pass/fail logic, identical estimates to the legacy
``repro.core.montecarlo.operational_monte_carlo`` — plus Wilson confidence
intervals, telemetry, and optional parallel batch execution.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..evaluation.evaluator import Evaluator
from ..statistics.sampling import SampleSet
from .base import YieldEstimator
from .result import YieldResult
from .shard import ShardPlan
from .telemetry import PhaseTimer


class OperationalMC(YieldEstimator):
    """i.i.d. standard-normal sampling, binomial estimate, Wilson CI."""

    name = "mc"

    def estimate(self, evaluator: Evaluator, d: Mapping[str, float],
                 theta_per_spec: Mapping[str, Mapping[str, float]],
                 n_samples: int = 300, seed: Optional[int] = 2001,
                 worst_case: Optional[Mapping[str, object]] = None,
                 samples: Optional[SampleSet] = None,
                 shard: Optional[ShardPlan] = None) -> YieldResult:
        """``worst_case`` is accepted for interface uniformity and ignored.
        Pass an explicit ``samples`` set to reuse draws across designs
        (paired comparison).  With a ``shard``, this run draws only its
        own ``SeedSequence.spawn`` sub-stream of the logical
        ``n_samples`` draws (the 1-shard plan is the identity)."""
        report = self._new_report(n_samples)
        with PhaseTimer(report, "draw"):
            if samples is None:
                dim = evaluator.template.statistical_space.dim
                if shard is None:
                    samples = SampleSet.draw(n_samples, dim, seed=seed)
                else:
                    samples = SampleSet.draw(shard.count(n_samples), dim,
                                             seed=shard.seed_for(seed))
        report.n_samples = samples.n
        evaluation = self._evaluate_matrix(evaluator, d, theta_per_spec,
                                           samples.matrix, report)
        return self._binomial_result(evaluation, report, shard=shard)
