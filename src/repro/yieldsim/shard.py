"""Sharded verification Monte-Carlo: sub-stream partitioning + merging.

One verification run's estimators are all *linear in their sample
streams* (binomial counts for MC/QMC, weight sums for self-normalized
IS), so a large-N verification can be split across machines and merged
exactly — the binding constraint at paper-scale N is a single machine's
wall clock, not the math.  This module provides both halves:

* :class:`ShardPlan` — a deterministic partition of one logical sample
  stream.  Plain MC and importance sampling give every shard an
  independent sub-stream via ``SeedSequence.spawn`` (the NumPy-blessed
  way to split a seed without correlations); Sobol QMC *skip-aheads*
  into the one scrambled sequence (``fast_forward``), so the shards
  together are literally the unsharded point set.  A ``1/1`` plan is
  the identity: it draws the unsharded stream bit-for-bit.

* :func:`merge_results` — pools the :class:`~repro.yieldsim.result.
  SufficientStats` of per-shard :class:`YieldResult` records: success
  counts for MC/QMC (the merged Wilson interval is recomputed from the
  pooled ``k, N``), rescaled weight sums ``sum w`` / ``sum w^2`` for IS
  (the pooled delta-method interval and ESS follow), per-spec weighted
  moments via Chan's parallel-variance combine, and telemetry folded
  through :func:`merge_reports` / :class:`~repro.yieldsim.telemetry.
  SimulatorHealth`.  Merging a single shard returns that shard's record
  unchanged (the algebraic identity), so a ``1/1`` shard-and-merge is
  bit-identical to the unsharded run.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ReproError
from .result import (KIND_BINOMIAL, KIND_WEIGHTED, SpecMoments,
                     SufficientStats, YieldResult, _stats_ess,
                     _stats_estimate, _stats_interval,
                     _weighted_standard_error)
from .telemetry import RunReport

_SHARD_RE = re.compile(r"^\s*(\d+)\s*/\s*(\d+)\s*$")


@dataclass(frozen=True)
class ShardPlan:
    """One shard of a deterministically partitioned sample stream.

    ``index`` is 0-based; the CLI's ``--shard i/N`` syntax is 1-based
    (``--shard 1/4`` is ``ShardPlan(0, 4)``).
    """

    index: int
    total: int

    def __post_init__(self):
        if self.total < 1:
            raise ReproError(f"shard total must be >= 1, got {self.total}")
        if not 0 <= self.index < self.total:
            raise ReproError(
                f"shard index {self.index} outside [0, {self.total})")

    @classmethod
    def parse(cls, text: str) -> "ShardPlan":
        """Parse the CLI's 1-based ``i/N`` syntax."""
        match = _SHARD_RE.match(text)
        if not match:
            raise ReproError(
                f"shard spec {text!r} is not of the form i/N (e.g. 2/4)")
        i, total = int(match.group(1)), int(match.group(2))
        if not 1 <= i <= max(total, 1):
            raise ReproError(
                f"shard spec {text!r}: index must be in 1..{total}")
        return cls(index=i - 1, total=total)

    @property
    def label(self) -> str:
        """Human-readable 1-based ``i/N`` label."""
        return f"{self.index + 1}/{self.total}"

    def count(self, n_samples: int) -> int:
        """This shard's sample count out of ``n_samples`` total: the
        first ``n % total`` shards take one extra sample."""
        base, extra = divmod(n_samples, self.total)
        count = base + (1 if self.index < extra else 0)
        if count < 1:
            raise ReproError(
                f"shard {self.label} of {n_samples} samples is empty; "
                f"use at most {n_samples} shards")
        return count

    def offset(self, n_samples: int) -> int:
        """Index of this shard's first sample in the combined stream
        (the QMC skip-ahead distance)."""
        base, extra = divmod(n_samples, self.total)
        return self.index * base + min(self.index, extra)

    def check_seed(self, seed: Optional[int]) -> None:
        """Sharding a stream across machines requires an explicit seed —
        with ``None`` every shard would invent unrelated entropy."""
        if self.total > 1 and seed is None:
            raise ReproError(
                "sharded estimation needs an explicit seed; every shard "
                "must derive its sub-stream from the same root")

    def seed_for(self, seed: Optional[int]
                 ) -> Union[int, None, np.random.SeedSequence]:
        """The i.i.d. sub-stream seed of this shard.

        The identity plan (``total == 1``) returns ``seed`` unchanged,
        so a 1-shard run draws the unsharded stream bit-for-bit; larger
        plans return child ``index`` of ``SeedSequence(seed).spawn``.
        """
        if self.total == 1:
            return seed
        self.check_seed(seed)
        return np.random.SeedSequence(seed).spawn(self.total)[self.index]


# -- telemetry folding --------------------------------------------------------
def merge_reports(reports: Sequence[RunReport]) -> Optional[RunReport]:
    """Fold per-shard run reports into one: counters and phase times
    add, the degraded/incompatible flags OR together."""
    if not reports:
        return None
    merged = RunReport(estimator=reports[0].estimator)
    backends = []
    for report in reports:
        merged.n_samples += report.n_samples
        merged.theta_groups = max(merged.theta_groups,
                                  report.theta_groups)
        merged.simulations += report.simulations
        merged.requests += report.requests
        merged.cache_hits += report.cache_hits
        merged.cache_misses += report.cache_misses
        merged.jobs = max(merged.jobs, report.jobs)
        merged.chunks += report.chunks
        merged.retried_chunks += report.retried_chunks
        merged.timed_out_chunks += report.timed_out_chunks
        merged.failed_samples += report.failed_samples
        merged.retried_evaluations += report.retried_evaluations
        merged.degraded_to_serial |= report.degraded_to_serial
        merged.pool_incompatible |= report.pool_incompatible
        if report.backend not in backends:
            backends.append(report.backend)
        for key, count in getattr(report, "warm_cache", {}).items():
            merged.warm_cache[key] = merged.warm_cache.get(key, 0) + count
        for key, count in getattr(report, "dc_effort", {}).items():
            merged.dc_effort[key] = merged.dc_effort.get(key, 0) + count
        for phase, seconds in report.phase_seconds.items():
            merged.phase_seconds[phase] = \
                merged.phase_seconds.get(phase, 0.0) + seconds
    merged.backend = backends[0] if len(backends) == 1 else "mixed"
    return merged


# -- merge algebra ------------------------------------------------------------
def _combine_moments(a: SpecMoments, b: SpecMoments) -> SpecMoments:
    """Chan's parallel combine of two weighted moment accumulators."""
    merged = SpecMoments(bad_weight=a.bad_weight + b.bad_weight)
    if a.weight <= 0.0:
        merged.weight, merged.mean, merged.m2 = b.weight, b.mean, b.m2
        return merged
    if b.weight <= 0.0:
        merged.weight, merged.mean, merged.m2 = a.weight, a.mean, a.m2
        return merged
    weight = a.weight + b.weight
    delta = b.mean - a.mean
    merged.weight = weight
    merged.mean = a.mean + delta * (b.weight / weight)
    merged.m2 = a.m2 + b.m2 + delta * delta * (a.weight * b.weight
                                               / weight)
    return merged


def _scaled(stats: SufficientStats, scale: float) -> SufficientStats:
    """``stats`` with every weight sum multiplied by ``scale`` (moment
    ``m2`` is linear in the weights; ``mean`` is scale-invariant)."""
    if scale == 1.0:
        return stats
    return replace(
        stats,
        w_sum=stats.w_sum * scale,
        w_sq_sum=stats.w_sq_sum * scale * scale,
        w_pass_sum=stats.w_pass_sum * scale,
        w_sq_pass_sum=stats.w_sq_pass_sum * scale * scale,
        spec={key: SpecMoments(weight=m.weight * scale, mean=m.mean,
                               m2=m.m2 * scale,
                               bad_weight=m.bad_weight * scale)
              for key, m in stats.spec.items()})


def merge_stats(parts: Sequence[SufficientStats]) -> SufficientStats:
    """Pool sufficient statistics over disjoint sample streams.

    Binomial streams pool by plain count addition.  Weighted streams
    are first brought to a common log scale (the largest ``log_shift``
    among the parts) so the rescaled weight sums add exactly.
    """
    if not parts:
        raise ReproError("merge_stats needs at least one part")
    kinds = {part.kind for part in parts}
    if len(kinds) != 1:
        raise ReproError(f"cannot merge mixed statistics kinds {kinds}")
    kind = parts[0].kind
    shift = max(part.log_shift for part in parts) \
        if kind == KIND_WEIGHTED else 0.0
    merged = SufficientStats(kind=kind, n=0, successes=0,
                             log_shift=shift)
    for part in parts:
        scaled = _scaled(part, math.exp(part.log_shift - shift)) \
            if kind == KIND_WEIGHTED else part
        merged.n += scaled.n
        merged.successes += scaled.successes
        merged.failed += scaled.failed
        merged.w_sum += scaled.w_sum
        merged.w_sq_sum += scaled.w_sq_sum
        merged.w_pass_sum += scaled.w_pass_sum
        merged.w_sq_pass_sum += scaled.w_sq_pass_sum
        for key, moments in scaled.spec.items():
            merged.spec[key] = _combine_moments(
                merged.spec.get(key, SpecMoments()), moments)
    return merged


def _check_provenance(results: Sequence[YieldResult]) -> Optional[int]:
    """Validate shard provenance consistency; returns the common shard
    total (None when the inputs carry no provenance, e.g. independent
    unsharded runs being pooled)."""
    totals = {r.shard_total for r in results if r.shard_total is not None}
    if not totals:
        return None
    if len(totals) != 1:
        raise ReproError(
            f"cannot merge shards of different partitions: totals "
            f"{sorted(totals)}")
    seen = {}
    for result in results:
        if result.shard_index is None:
            continue
        if result.shard_index in seen:
            raise ReproError(
                f"duplicate shard {result.shard_index + 1}/"
                f"{next(iter(totals))} in merge input")
        seen[result.shard_index] = result
    return next(iter(totals))


def merge_results(results: Sequence[YieldResult],
                  level: Optional[float] = None) -> YieldResult:
    """Combine per-shard yield results into the pooled estimate.

    All inputs must come from the same estimator and carry sufficient
    statistics.  The merged record's interval/SE/ESS are recomputed
    from the pooled statistics at ``level`` (default: the shards'
    common ``ci_level``); telemetry folds through :func:`merge_reports`
    and the per-shard reports are retained as provenance.  Merging a
    single result returns it unchanged apart from provenance — the
    1-shard merge is bit-identical to the unsharded run.
    """
    results = list(results)
    if not results:
        raise ReproError("merge_results needs at least one result")
    estimators = {result.estimator for result in results}
    if len(estimators) != 1:
        raise ReproError(
            f"cannot merge results of different estimators "
            f"{sorted(estimators)}")
    missing = [i for i, result in enumerate(results)
               if result.stats is None]
    if missing:
        raise ReproError(
            f"result(s) {missing} carry no sufficient statistics "
            f"(pre-shard record?); re-run the shards to merge them")
    levels = {result.ci_level for result in results}
    if level is None:
        if len(levels) != 1:
            raise ReproError(
                f"shards carry different ci_levels {sorted(levels)}; "
                f"pass an explicit level")
        level = results[0].ci_level
    shard_total = _check_provenance(results)
    reports = [result.report for result in results
               if result.report is not None]
    if len(results) == 1:
        single = results[0]
        return replace(single, merged_from=1, shard_index=None,
                       shard_total=shard_total,
                       shard_reports=list(reports))

    stats = merge_stats([result.stats for result in results])
    estimate = _stats_estimate(stats)
    ci_low, ci_high = _stats_interval(stats, estimate, level)
    bad_fraction = {}
    means = {}
    stds = {}
    denom = float(stats.n) if stats.kind == KIND_BINOMIAL else stats.w_sum
    for key, moments in stats.spec.items():
        bad_fraction[key] = moments.bad_weight / denom if denom else 0.0
        if moments.weight > 0.0:
            means[key] = moments.mean
        else:
            means[key] = float("nan")
        if stats.kind == KIND_BINOMIAL:
            stds[key] = math.sqrt(max(moments.m2, 0.0)
                                  / (moments.weight - 1.0)) \
                if moments.weight > 1.0 else 0.0
        else:
            stds[key] = math.sqrt(max(moments.m2, 0.0) / moments.weight) \
                if moments.weight > 0.0 else 0.0
    return YieldResult(
        estimator=results[0].estimator,
        estimate=estimate,
        n_samples=stats.n,
        simulations=sum(result.simulations for result in results),
        ci_low=ci_low, ci_high=ci_high, ci_level=level,
        ess=_stats_ess(stats),
        bad_fraction=bad_fraction,
        performance_mean=means,
        performance_std=stds,
        failed_samples=stats.failed,
        report=merge_reports(reports),
        stats=stats,
        shard_index=None,
        shard_total=shard_total,
        merged_from=len(results),
        shard_reports=list(reports))
