"""The common result record all yield estimators produce.

:class:`YieldResult` is deliberately duck-compatible with the legacy
:class:`~repro.core.montecarlo.MonteCarloResult` (``yield_estimate``,
``n_samples``, ``bad_fraction``, ``simulations``, ``performance_mean``,
``performance_std``, ``standard_error``), so optimizer records and the
paper-table renderers accept either — plus it carries what the legacy
record could not express: a confidence interval that stays honest at
0 %/100 % estimates, the effective sample size of weighted estimators,
and the run telemetry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from .telemetry import RunReport


@dataclass
class YieldResult:
    """Outcome of one yield estimation."""

    #: estimator short name ("mc", "is", "qmc")
    estimator: str
    #: the yield estimate in [0, 1]
    estimate: float
    #: statistical samples used
    n_samples: int
    #: simulator calls spent by this run
    simulations: int
    #: confidence interval [ci_low, ci_high] at ``ci_level``
    ci_low: float
    ci_high: float
    ci_level: float
    #: effective sample size: ``n`` for unweighted estimators,
    #: ``(sum w)^2 / sum w^2`` for importance sampling
    ess: float
    #: per spec key, (weighted) fraction of samples violating that spec
    bad_fraction: Dict[str, float] = field(default_factory=dict)
    #: per spec key, (weighted) sample mean of the performance at its
    #: worst-case operating point (presentation units)
    performance_mean: Dict[str, float] = field(default_factory=dict)
    #: per spec key, (weighted) sample standard deviation
    performance_std: Dict[str, float] = field(default_factory=dict)
    #: samples whose evaluation failed under the fault policy; each is
    #: counted as violating every spec (already folded into ``estimate``
    #: and ``bad_fraction``), surfaced here for the trace tables
    failed_samples: int = 0
    #: run telemetry (phases, executor stats, cache accounting)
    report: Optional[RunReport] = None

    # -- legacy-compatible views -----------------------------------------------
    @property
    def yield_estimate(self) -> float:
        """Alias matching :class:`MonteCarloResult`."""
        return self.estimate

    @property
    def standard_error(self) -> float:
        """Half the CI width mapped back to one standard error."""
        from ..statistics.intervals import z_quantile
        return self.ci_width / (2.0 * z_quantile(self.ci_level))

    @property
    def ci_width(self) -> float:
        return self.ci_high - self.ci_low

    def confidence_interval(self, level: Optional[float] = None):
        """The (ci_low, ci_high) tuple; ``level`` other than the stored
        one is not recomputable after the fact and raises."""
        if level is not None and abs(level - self.ci_level) > 1e-12:
            raise ValueError(
                f"result carries a {self.ci_level:.0%} interval; "
                f"re-run the estimator for level {level}")
        return (self.ci_low, self.ci_high)

    # -- serialization ----------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "estimator": self.estimator,
            "estimate": self.estimate,
            "n_samples": self.n_samples,
            "simulations": self.simulations,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "ci_level": self.ci_level,
            "ess": self.ess,
            "bad_fraction": dict(self.bad_fraction),
            "performance_mean": dict(self.performance_mean),
            "performance_std": dict(self.performance_std),
            "failed_samples": self.failed_samples,
            "report": self.report.to_dict() if self.report else None,
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Dict) -> "YieldResult":
        """Inverse of :meth:`to_dict`; used by checkpoint restore."""
        report = data.get("report")
        return cls(
            estimator=data["estimator"],
            estimate=float(data["estimate"]),
            n_samples=int(data["n_samples"]),
            simulations=int(data["simulations"]),
            ci_low=float(data["ci_low"]),
            ci_high=float(data["ci_high"]),
            ci_level=float(data["ci_level"]),
            ess=float(data["ess"]),
            bad_fraction=dict(data.get("bad_fraction", {})),
            performance_mean=dict(data.get("performance_mean", {})),
            performance_std=dict(data.get("performance_std", {})),
            failed_samples=int(data.get("failed_samples", 0)),
            report=None if report is None
            else RunReport.from_dict(report))
