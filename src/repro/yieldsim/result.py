"""The common result record all yield estimators produce.

:class:`YieldResult` is deliberately duck-compatible with the legacy
:class:`~repro.core.montecarlo.MonteCarloResult` (``yield_estimate``,
``n_samples``, ``bad_fraction``, ``simulations``, ``performance_mean``,
``performance_std``, ``standard_error``), so optimizer records and the
paper-table renderers accept either — plus it carries what the legacy
record could not express: a confidence interval that stays honest at
0 %/100 % estimates, the effective sample size of weighted estimators,
and the run telemetry.

Since the sharded-verification work the record also carries its
**sufficient statistics** (:class:`SufficientStats`): the pooled success
count for binomial estimators, the weight sums ``sum w`` / ``sum w^2``
for self-normalized importance sampling, and per-spec weighted moment
accumulators.  All three estimators are linear in their sample streams,
so two results over disjoint streams combine *exactly* by pooling these
statistics (:func:`repro.yieldsim.shard.merge_results`) — the frozen
``ci_low/ci_high`` numbers are a rendering of the statistics, not the
record of truth.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .telemetry import RunReport

#: ``SufficientStats.kind`` for unweighted (binomial) estimators (MC/QMC)
KIND_BINOMIAL = "binomial"
#: ``SufficientStats.kind`` for self-normalized weighted estimators (IS)
KIND_WEIGHTED = "weighted"


@dataclass
class SpecMoments:
    """Per-spec weighted moment accumulators over one sample stream.

    For unweighted estimators the "weights" are unit counts; for
    importance sampling they are the likelihood ratios at the shard's
    log scale (see :attr:`SufficientStats.log_shift`).  ``mean``/``m2``
    cover the *finite* (evaluable) samples only; ``bad_weight`` covers
    every sample, failed ones included (they violate every spec).
    """

    #: total weight of finite samples (count for binomial estimators)
    weight: float = 0.0
    #: weighted mean of the performance over the finite samples
    mean: float = 0.0
    #: weighted sum of squared deviations ``sum w (x - mean)^2``
    m2: float = 0.0
    #: total weight of spec-violating samples (count for binomial)
    bad_weight: float = 0.0

    def to_dict(self) -> Dict:
        return {"weight": self.weight, "mean": self.mean, "m2": self.m2,
                "bad_weight": self.bad_weight}

    @classmethod
    def from_dict(cls, data: Dict) -> "SpecMoments":
        return cls(weight=float(data["weight"]), mean=float(data["mean"]),
                   m2=float(data["m2"]),
                   bad_weight=float(data["bad_weight"]))


@dataclass
class SufficientStats:
    """Everything needed to pool yield estimates across sample streams.

    The weighted sums are stored at the shard's own log scale: the raw
    likelihood-ratio weights are ``exp(log w)``, the sums below use
    ``w = exp(log w - log_shift)`` with ``log_shift = max(log w)`` to
    stay finite.  Merging rescales each stream's sums by
    ``exp(log_shift_j - max_j log_shift_j)`` before adding, which keeps
    the pooled self-normalized ratio exact.  Binomial streams use unit
    weights (``log_shift = 0``, ``w_sum = n``).
    """

    #: :data:`KIND_BINOMIAL` or :data:`KIND_WEIGHTED`
    kind: str
    #: statistical samples in this stream
    n: int
    #: samples whose all-specs-pass indicator was True
    successes: int
    #: samples whose evaluation failed (counted as violating every spec)
    failed: int = 0
    #: log scale of the weight sums below (0 for binomial streams)
    log_shift: float = 0.0
    #: ``sum w`` over all samples
    w_sum: float = 0.0
    #: ``sum w^2`` over all samples
    w_sq_sum: float = 0.0
    #: ``sum w`` over passing samples
    w_pass_sum: float = 0.0
    #: ``sum w^2`` over passing samples
    w_sq_pass_sum: float = 0.0
    #: per spec key, the weighted moment accumulators
    spec: Dict[str, SpecMoments] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "n": self.n,
            "successes": self.successes,
            "failed": self.failed,
            "log_shift": self.log_shift,
            "w_sum": self.w_sum,
            "w_sq_sum": self.w_sq_sum,
            "w_pass_sum": self.w_pass_sum,
            "w_sq_pass_sum": self.w_sq_pass_sum,
            "spec": {key: moments.to_dict()
                     for key, moments in self.spec.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SufficientStats":
        return cls(
            kind=data["kind"],
            n=int(data["n"]),
            successes=int(data["successes"]),
            failed=int(data.get("failed", 0)),
            log_shift=float(data.get("log_shift", 0.0)),
            w_sum=float(data.get("w_sum", 0.0)),
            w_sq_sum=float(data.get("w_sq_sum", 0.0)),
            w_pass_sum=float(data.get("w_pass_sum", 0.0)),
            w_sq_pass_sum=float(data.get("w_sq_pass_sum", 0.0)),
            spec={key: SpecMoments.from_dict(moments)
                  for key, moments in data.get("spec", {}).items()})


@dataclass
class YieldResult:
    """Outcome of one yield estimation."""

    #: estimator short name ("mc", "is", "qmc")
    estimator: str
    #: the yield estimate in [0, 1]
    estimate: float
    #: statistical samples used
    n_samples: int
    #: simulator calls spent by this run
    simulations: int
    #: confidence interval [ci_low, ci_high] at ``ci_level``
    ci_low: float
    ci_high: float
    ci_level: float
    #: effective sample size: ``n`` for unweighted estimators,
    #: ``(sum w)^2 / sum w^2`` for importance sampling
    ess: float
    #: per spec key, (weighted) fraction of samples violating that spec
    bad_fraction: Dict[str, float] = field(default_factory=dict)
    #: per spec key, (weighted) sample mean of the performance at its
    #: worst-case operating point (presentation units)
    performance_mean: Dict[str, float] = field(default_factory=dict)
    #: per spec key, (weighted) sample standard deviation
    performance_std: Dict[str, float] = field(default_factory=dict)
    #: samples whose evaluation failed under the fault policy; each is
    #: counted as violating every spec (already folded into ``estimate``
    #: and ``bad_fraction``), surfaced here for the trace tables
    failed_samples: int = 0
    #: run telemetry (phases, executor stats, cache accounting)
    report: Optional[RunReport] = None
    #: sufficient statistics for exact merging (None only on records
    #: deserialized from pre-shard checkpoints)
    stats: Optional[SufficientStats] = None
    #: 0-based shard index when this result covers one shard of a
    #: partitioned sample stream (None = unsharded / merged)
    shard_index: Optional[int] = None
    #: total shard count of the partition this result belongs to
    shard_total: Optional[int] = None
    #: number of shard results pooled into this record (0 = a direct
    #: estimator run, 1+ = produced by ``merge_results``)
    merged_from: int = 0
    #: the per-shard run reports of a merged record (provenance for the
    #: health tables; ``report`` is their fold)
    shard_reports: List[RunReport] = field(default_factory=list)

    # -- legacy-compatible views -----------------------------------------------
    @property
    def yield_estimate(self) -> float:
        """Alias matching :class:`MonteCarloResult`."""
        return self.estimate

    @property
    def standard_error(self) -> float:
        """Standard error of the yield estimate.

        With sufficient statistics (any record produced since the shard
        work) this is computed directly: the binomial
        ``sqrt(p (1-p) / n)`` for MC/QMC, the delta-method SE of the
        self-normalized ratio for IS.  Mapping the Wilson width back
        through ``ci_width / (2 z)`` — the only option on legacy records
        without statistics — is wrong for the asymmetric intervals near
        0/1 (at ``k = 0`` it reports half the upper edge as an "SE"), so
        it remains only as the legacy fallback.
        """
        if self.stats is not None:
            return _stats_standard_error(self.stats)
        from ..statistics.intervals import z_quantile
        return self.ci_width / (2.0 * z_quantile(self.ci_level))

    @property
    def ci_width(self) -> float:
        return self.ci_high - self.ci_low

    def confidence_interval(self, level: Optional[float] = None
                            ) -> Tuple[float, float]:
        """The confidence interval at ``level``.

        With sufficient statistics any level is recomputable (Wilson
        from the pooled ``k, N`` for binomial estimators, delta-method
        normal for IS).  Legacy records without statistics carry only
        the frozen interval and raise for any other level.
        """
        if level is None or abs(level - self.ci_level) <= 1e-12:
            return (self.ci_low, self.ci_high)
        if self.stats is not None:
            return _stats_interval(self.stats, self.estimate, level)
        raise ValueError(
            f"result carries a {self.ci_level:.0%} interval and no "
            f"sufficient statistics; re-run the estimator for level "
            f"{level}")

    # -- serialization ----------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "estimator": self.estimator,
            "estimate": self.estimate,
            "n_samples": self.n_samples,
            "simulations": self.simulations,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "ci_level": self.ci_level,
            "ess": self.ess,
            "bad_fraction": dict(self.bad_fraction),
            "performance_mean": dict(self.performance_mean),
            "performance_std": dict(self.performance_std),
            "failed_samples": self.failed_samples,
            "report": self.report.to_dict() if self.report else None,
            "stats": self.stats.to_dict() if self.stats else None,
            "shard_index": self.shard_index,
            "shard_total": self.shard_total,
            "merged_from": self.merged_from,
            "shard_reports": [report.to_dict()
                              for report in self.shard_reports],
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Dict) -> "YieldResult":
        """Inverse of :meth:`to_dict`; used by checkpoint restore."""
        report = data.get("report")
        stats = data.get("stats")
        return cls(
            estimator=data["estimator"],
            estimate=float(data["estimate"]),
            n_samples=int(data["n_samples"]),
            simulations=int(data["simulations"]),
            ci_low=float(data["ci_low"]),
            ci_high=float(data["ci_high"]),
            ci_level=float(data["ci_level"]),
            ess=float(data["ess"]),
            bad_fraction=dict(data.get("bad_fraction", {})),
            performance_mean=dict(data.get("performance_mean", {})),
            performance_std=dict(data.get("performance_std", {})),
            failed_samples=int(data.get("failed_samples", 0)),
            report=None if report is None
            else RunReport.from_dict(report),
            stats=None if stats is None
            else SufficientStats.from_dict(stats),
            shard_index=data.get("shard_index"),
            shard_total=data.get("shard_total"),
            merged_from=int(data.get("merged_from", 0)),
            shard_reports=[RunReport.from_dict(entry)
                           for entry in data.get("shard_reports", [])])


# -- deriving presentation numbers from sufficient statistics ----------------
def _stats_standard_error(stats: SufficientStats) -> float:
    """The direct SE of the estimate ``stats`` describes."""
    if stats.kind == KIND_BINOMIAL:
        if stats.n <= 0:
            return 0.0
        p = stats.successes / stats.n
        return math.sqrt(max(p * (1.0 - p), 0.0) / stats.n)
    return _weighted_standard_error(stats, _stats_estimate(stats))


def _stats_estimate(stats: SufficientStats) -> float:
    """The yield estimate pooled statistics imply (degenerate streams
    snap to the exact edge, matching the single-run estimators)."""
    if stats.kind == KIND_BINOMIAL:
        return stats.successes / stats.n if stats.n else 0.0
    if stats.successes == 0:
        return 0.0
    if stats.successes == stats.n:
        return 1.0
    return stats.w_pass_sum / stats.w_sum if stats.w_sum else 0.0


def _weighted_standard_error(stats: SufficientStats,
                             estimate: float) -> float:
    """Delta-method SE of the self-normalized ratio from pooled sums.

    ``sum (w_norm (I - e))^2`` expands (``I^2 = I``) to
    ``((1 - 2e) sum_pass w^2 + e^2 sum w^2) / (sum w)^2``.
    """
    if stats.w_sum <= 0.0:
        return 0.0
    variance = ((1.0 - 2.0 * estimate) * stats.w_sq_pass_sum
                + estimate * estimate * stats.w_sq_sum)
    return math.sqrt(max(variance, 0.0)) / stats.w_sum


def _stats_ess(stats: SufficientStats) -> float:
    if stats.kind == KIND_BINOMIAL:
        return float(stats.n)
    if stats.w_sq_sum <= 0.0:
        return 0.0
    return (stats.w_sum * stats.w_sum) / stats.w_sq_sum


def _stats_interval(stats: SufficientStats, estimate: float,
                    level: float) -> Tuple[float, float]:
    """Recompute the confidence interval at ``level``: Wilson from the
    pooled ``k, N`` for binomial streams, delta-method normal with the
    rule-of-three degenerate fallback for weighted streams."""
    from ..statistics.intervals import normal_interval, wilson_interval
    if stats.kind == KIND_BINOMIAL:
        return wilson_interval(stats.successes, stats.n, level)
    se = _weighted_standard_error(stats, estimate)
    ci_low, ci_high = normal_interval(estimate, se, level)
    three = min(1.0, 3.0 / max(_stats_ess(stats), 1.0))
    if stats.successes == 0:
        ci_high = max(ci_high, three)
    elif stats.successes == stats.n:
        ci_low = min(ci_low, 1.0 - three)
    return (ci_low, ci_high)
