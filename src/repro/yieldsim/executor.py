"""Batched parallel execution engine for sample-matrix evaluation.

Every yield estimator reduces to the same inner loop: evaluate each
statistical sample at each distinct worst-case operating corner.  This
module runs that loop either serially (sharing the caller's cached
:class:`~repro.evaluation.evaluator.Evaluator`) or on a process pool:

* the sample matrix is split into contiguous **chunks**, one pool task
  each, so per-task overhead amortizes over many simulations;
* each worker process builds its **own** evaluator around the (pickled)
  circuit template — templates are pure analytic objects, so results are
  bit-identical to serial evaluation;
* each chunk has a **timeout and one retry**: a chunk that raises in the
  pool is re-run serially in the parent, which always terminates, so a
  wedged worker cannot hang a verification run;
* a chunk **timeout** or a ``BrokenProcessPool`` marks the pool dead: its
  workers are terminated (a truly hung process must not outlive the run)
  and the remainder of the batch **degrades to serial** in-parent
  execution — already-finished chunk results are still harvested, and
  nothing is retried against a dead pool;
* results are reassembled **by chunk index**, so the output ordering (and
  therefore every downstream estimate) is independent of worker count and
  scheduling;
* worker-side simulation/cache counters are folded back into the parent
  evaluator, keeping Table-7 effort accounting complete.
"""

from __future__ import annotations

import math
import multiprocessing
import sys
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..evaluation.evaluator import Evaluator

#: Chunks submitted per worker (when no explicit chunk size is given):
#: small enough to balance uneven chunk runtimes, large enough to
#: amortize task submission overhead.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class ExecutionConfig:
    """How a batch of sample evaluations is executed."""

    #: worker processes; 1 = serial in the calling process
    jobs: int = 1
    #: samples per pool task (None = automatic)
    chunk_size: Optional[int] = None
    #: per-chunk wait budget in seconds (None = wait forever)
    timeout_s: Optional[float] = None
    #: serial in-parent re-runs for a failed/timed-out chunk
    retries: int = 1

    def __post_init__(self):
        if self.jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {self.jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ReproError(
                f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.retries < 0:
            raise ReproError(f"retries must be >= 0, got {self.retries}")


@dataclass
class BatchOutcome:
    """Evaluation of a full sample matrix.

    ``values[j][g]`` is the performance dict of sample ``j`` at operating
    point (theta group) ``g`` — ordering matches the input matrix exactly,
    regardless of backend.
    """

    values: List[List[Dict[str, float]]]
    simulations: int = 0
    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    backend: str = "serial"
    jobs: int = 1
    chunks: int = 0
    retried_chunks: int = 0
    timed_out_chunks: int = 0
    #: True when the pool died (timeout-killed or broken workers) and the
    #: remaining chunks ran serially in the parent
    degraded_to_serial: bool = False


# -- worker side -------------------------------------------------------------
_WORKER: Dict[str, object] = {}


def _init_worker(template, cache_enabled: bool,
                 d: Dict[str, float], thetas: List[Dict[str, float]]):
    """Pool initializer: build a private evaluator in each worker."""
    _WORKER["evaluator"] = Evaluator(template, cache=cache_enabled)
    _WORKER["d"] = d
    _WORKER["thetas"] = thetas


def _run_chunk(start: int, rows: np.ndarray
               ) -> Tuple[int, List[List[Dict[str, float]]], int, int, int,
                          int]:
    """Evaluate one chunk inside a worker; returns counter deltas."""
    evaluator: Evaluator = _WORKER["evaluator"]  # type: ignore[assignment]
    d = _WORKER["d"]
    thetas = _WORKER["thetas"]
    before = (evaluator.simulation_count, evaluator.request_count,
              evaluator.cache_hits, evaluator.cache_misses)
    values = [[dict(evaluator.evaluate(d, row, theta)) for theta in thetas]
              for row in rows]
    return (start, values,
            evaluator.simulation_count - before[0],
            evaluator.request_count - before[1],
            evaluator.cache_hits - before[2],
            evaluator.cache_misses - before[3])


def _pool_context():
    """Prefer fork on POSIX: workers inherit loaded modules, so templates
    defined outside installed packages (tests, notebooks) stay usable."""
    if sys.platform != "win32":
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover
            pass
    return multiprocessing.get_context()


# -- driver ------------------------------------------------------------------
class BatchExecutor:
    """Drives an :class:`Evaluator` over a sample matrix in batches."""

    def __init__(self, config: Optional[ExecutionConfig] = None):
        self.config = config or ExecutionConfig()

    def run(self, evaluator: Evaluator, d: Mapping[str, float],
            thetas: Sequence[Mapping[str, float]],
            matrix: np.ndarray) -> BatchOutcome:
        """Evaluate every row of ``matrix`` at every theta in ``thetas``."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ReproError("sample matrix must be 2-D (n, dim)")
        if not thetas:
            raise ReproError("at least one operating point is required")
        if self.config.jobs == 1 or matrix.shape[0] == 1:
            return self._run_serial(evaluator, d, thetas, matrix)
        return self._run_pool(evaluator, d, thetas, matrix)

    # -- serial ----------------------------------------------------------------
    def _run_serial(self, evaluator: Evaluator, d: Mapping[str, float],
                    thetas: Sequence[Mapping[str, float]],
                    matrix: np.ndarray) -> BatchOutcome:
        before = (evaluator.simulation_count, evaluator.request_count,
                  evaluator.cache_hits, evaluator.cache_misses)
        values = [[dict(evaluator.evaluate(d, row, theta))
                   for theta in thetas] for row in matrix]
        return BatchOutcome(
            values=values,
            simulations=evaluator.simulation_count - before[0],
            requests=evaluator.request_count - before[1],
            cache_hits=evaluator.cache_hits - before[2],
            cache_misses=evaluator.cache_misses - before[3],
            backend="serial", jobs=1, chunks=1)

    # -- process pool ----------------------------------------------------------
    def _chunk_bounds(self, n: int) -> List[Tuple[int, int]]:
        size = self.config.chunk_size
        if size is None:
            size = max(1, math.ceil(n / (self.config.jobs
                                         * _CHUNKS_PER_WORKER)))
        return [(start, min(start + size, n)) for start in range(0, n, size)]

    def _retry_chunk(self, evaluator: Evaluator, d: Mapping[str, float],
                     thetas: Sequence[Mapping[str, float]],
                     rows: np.ndarray, error: BaseException
                     ) -> List[List[Dict[str, float]]]:
        """In-parent serial re-run of one failed chunk (counts on the
        parent evaluator directly)."""
        last: BaseException = error
        for _ in range(self.config.retries):
            try:
                return [[dict(evaluator.evaluate(d, row, theta))
                         for theta in thetas] for row in rows]
            except Exception as exc:
                last = exc
        raise ReproError(
            f"batch chunk failed after {self.config.retries} "
            f"retr{'y' if self.config.retries == 1 else 'ies'}: {last}"
        ) from last

    @staticmethod
    def _kill_pool(pool: futures.ProcessPoolExecutor) -> None:
        """Tear a (possibly wedged) pool down without waiting.

        ``Future.cancel`` has no effect on a *running* future, so a hung
        worker would outlive the run if we merely shut the executor
        down; terminate the worker processes explicitly (and escalate to
        SIGKILL if termination does not take).  The process list must be
        snapshotted *before* ``shutdown``, which drops the pool's
        reference to it."""
        processes = list((getattr(pool, "_processes", None) or {})
                         .values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=1.0)

    @staticmethod
    def _harvest_finished(future):
        """The payload of a future that completed *before* the pool
        died, else None (cancelled / still running / poisoned)."""
        if not future.done() or future.cancelled():
            return None
        try:
            return future.result(timeout=0)
        except Exception:
            return None

    def _run_pool(self, evaluator: Evaluator, d: Mapping[str, float],
                  thetas: Sequence[Mapping[str, float]],
                  matrix: np.ndarray) -> BatchOutcome:
        n = matrix.shape[0]
        bounds = self._chunk_bounds(n)
        jobs = min(self.config.jobs, len(bounds))
        d_plain = dict(d)
        thetas_plain = [dict(theta) for theta in thetas]
        outcome = BatchOutcome(values=[[] for _ in range(n)],
                               backend="process-pool", jobs=jobs,
                               chunks=len(bounds))
        pool_counts = [0, 0, 0, 0]  # sims, requests, hits, misses

        def fold(counts: Tuple[int, int, int, int]) -> None:
            for i, delta in enumerate(counts):
                pool_counts[i] += delta

        pool = futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(evaluator.template, evaluator.cache_enabled,
                      d_plain, thetas_plain))
        pool_dead: Optional[BaseException] = None
        try:
            pending = [(start, end,
                        pool.submit(_run_chunk, start, matrix[start:end]))
                       for start, end in bounds]
            for start, end, future in pending:
                values = None
                if pool_dead is None:
                    try:
                        (_, values, *counts) = future.result(
                            timeout=self.config.timeout_s)
                        fold(tuple(counts))
                    except futures.TimeoutError as exc:
                        # A wedged worker: kill the pool (the hung
                        # process must not outlive the run) and degrade
                        # the rest of the batch to serial execution.
                        outcome.timed_out_chunks += 1
                        pool_dead = exc
                        self._kill_pool(pool)
                    except BrokenProcessPool as exc:
                        # Dead pool: retrying chunk-by-chunk against it
                        # would fail every time.  Degrade to serial.
                        pool_dead = exc
                        self._kill_pool(pool)
                    except Exception as exc:
                        outcome.retried_chunks += 1
                        # The retry runs on the parent evaluator, so its
                        # counter deltas land there directly.
                        values = self._retry_chunk(evaluator, d_plain,
                                                   thetas_plain,
                                                   matrix[start:end], exc)
                if values is None:
                    # The pool died: harvest chunks that finished before
                    # the collapse, run the rest serially in the parent.
                    outcome.degraded_to_serial = True
                    harvest = self._harvest_finished(future)
                    if harvest is not None:
                        (_, values, *counts) = harvest
                        fold(tuple(counts))
                    else:
                        outcome.retried_chunks += 1
                        values = self._retry_chunk(evaluator, d_plain,
                                                   thetas_plain,
                                                   matrix[start:end],
                                                   pool_dead)
                for offset, per_theta in enumerate(values):
                    outcome.values[start + offset] = per_theta
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        # Fold worker-side effort into the parent's accounting (retried
        # chunks already counted themselves on the parent evaluator).
        evaluator.absorb_counts(
            simulations=pool_counts[0], requests=pool_counts[1],
            cache_hits=pool_counts[2], cache_misses=pool_counts[3])
        outcome.simulations = pool_counts[0]
        outcome.requests = pool_counts[1]
        outcome.cache_hits = pool_counts[2]
        outcome.cache_misses = pool_counts[3]
        return outcome
