"""Batched parallel execution engine for sample-matrix evaluation.

Every yield estimator reduces to the same inner loop: evaluate each
statistical sample at each distinct worst-case operating corner.  This
module runs that loop either serially (sharing the caller's cached
:class:`~repro.evaluation.evaluator.Evaluator`) or on a process pool:

* the sample matrix is split into contiguous **chunks**, one pool task
  each, so per-task overhead amortizes over many simulations;
* each worker process builds its **own** evaluator around the (pickled)
  circuit template — templates are pure analytic objects, so results are
  bit-identical to serial evaluation;
* each chunk has a **timeout and one retry**: a chunk that raises in the
  pool is re-run serially in the parent, which always terminates, so a
  wedged worker cannot hang a verification run;
* a chunk **timeout** or a ``BrokenProcessPool`` marks the pool dead: its
  workers are terminated (a truly hung process must not outlive the run)
  and the remainder of the batch **degrades to serial** in-parent
  execution — already-finished chunk results are still harvested, and
  nothing is retried against a dead pool;
* results are reassembled **by chunk index**, so the output ordering (and
  therefore every downstream estimate) is independent of worker count and
  scheduling;
* worker-side simulation/cache counters are folded back into the parent
  evaluator, keeping Table-7 effort accounting complete.

:class:`PoolHandle` is the persistent variant: one process pool created
per optimizer run and shared by the worst-case searches, the
finite-difference gradient probes and the verification Monte-Carlo, so
worker spawn and template pickling are paid once instead of per batch.
Workers ship back the **cache entries** each task added (not just the
counter deltas); the parent folds them in a deterministic task order via
:meth:`repro.evaluation.evaluator.Evaluator.absorb_cache`, which makes
the parent cache — and therefore every Table-7 counter — identical to a
serial run's, and keeps the evaluations themselves bit-identical (values
never depend on which process computed them).
"""

from __future__ import annotations

import math
import multiprocessing
import sys
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..evaluation.evaluator import Evaluator

#: Chunks submitted per worker (when no explicit chunk size is given):
#: small enough to balance uneven chunk runtimes, large enough to
#: amortize task submission overhead.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class ExecutionConfig:
    """How a batch of sample evaluations is executed."""

    #: worker processes; 1 = serial in the calling process
    jobs: int = 1
    #: samples per pool task (None = automatic)
    chunk_size: Optional[int] = None
    #: per-chunk wait budget in seconds (None = wait forever)
    timeout_s: Optional[float] = None
    #: serial in-parent re-runs for a failed/timed-out chunk
    retries: int = 1
    #: samples per vectorized simulation chunk on the in-process path
    #: (None = auto: the template's default chunk; 1 = force the scalar
    #: per-sample path).  Only affects templates with a sample-batched
    #: engine; results are bit-identical either way.
    batch_samples: Optional[int] = None

    def __post_init__(self):
        if self.jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {self.jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ReproError(
                f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.retries < 0:
            raise ReproError(f"retries must be >= 0, got {self.retries}")
        if self.batch_samples is not None and self.batch_samples < 1:
            raise ReproError(
                f"batch_samples must be >= 1, got {self.batch_samples}")


@dataclass
class BatchOutcome:
    """Evaluation of a full sample matrix.

    ``values[j][g]`` is the performance dict of sample ``j`` at operating
    point (theta group) ``g`` — ordering matches the input matrix exactly,
    regardless of backend.
    """

    values: List[List[Dict[str, float]]]
    simulations: int = 0
    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    backend: str = "serial"
    jobs: int = 1
    chunks: int = 0
    retried_chunks: int = 0
    timed_out_chunks: int = 0
    #: True when the pool died (timeout-killed or broken workers) and the
    #: remaining chunks ran serially in the parent
    degraded_to_serial: bool = False
    #: True when an alive pool was attached but could not serve this
    #: evaluation stack (template mismatch / non-replicable wrapper), so
    #: the batch ran serially despite a healthy pool
    pool_incompatible: bool = False


# -- worker side -------------------------------------------------------------
_WORKER: Dict[str, object] = {}


def _init_worker(template, cache_enabled: bool,
                 d: Dict[str, float], thetas: List[Dict[str, float]]):
    """Pool initializer: build a private evaluator in each worker."""
    _WORKER["evaluator"] = Evaluator(template, cache=cache_enabled)
    _WORKER["d"] = d
    _WORKER["thetas"] = thetas


def _run_chunk(start: int, rows: np.ndarray
               ) -> Tuple[int, List[List[Dict[str, float]]], int, int, int,
                          int]:
    """Evaluate one chunk inside a worker; returns counter deltas."""
    evaluator: Evaluator = _WORKER["evaluator"]  # type: ignore[assignment]
    d = _WORKER["d"]
    thetas = _WORKER["thetas"]
    before = (evaluator.simulation_count, evaluator.request_count,
              evaluator.cache_hits, evaluator.cache_misses)
    values = [[dict(evaluator.evaluate(d, row, theta)) for theta in thetas]
              for row in rows]
    return (start, values,
            evaluator.simulation_count - before[0],
            evaluator.request_count - before[1],
            evaluator.cache_hits - before[2],
            evaluator.cache_misses - before[3])


def _pool_context():
    """Prefer fork on POSIX: workers inherit loaded modules, so templates
    defined outside installed packages (tests, notebooks) stay usable."""
    if sys.platform != "win32":
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover
            pass
    return multiprocessing.get_context()


# -- persistent shared pool ---------------------------------------------------
@dataclass
class TaskCounts:
    """Evaluator-side effort of one pool task, in parent-foldable form.

    ``entries`` are the cache entries the task *added* to its worker's
    evaluator (insertion order); ``hits`` are the task's local cache hits.
    ``failed``/``retried``/``recovered`` mirror the per-task
    :class:`~repro.runtime.tolerant.FaultTolerantEvaluator` counters.
    """

    requests: int = 0
    hits: int = 0
    simulations: int = 0
    entries: List[Tuple[Tuple, Dict[str, float]]] = field(
        default_factory=list)
    failed: int = 0
    retried: int = 0
    recovered: int = 0
    #: warm-start cache counter deltas of the task (additive; empty when
    #: the template has no warm cache)
    warm: Dict[str, int] = field(default_factory=dict)
    #: per-strategy DC effort counter deltas of the task (additive; empty
    #: when the template has no DC effort counters)
    dc: Dict[str, int] = field(default_factory=dict)


def _init_pool_worker(template, cache_enabled: bool) -> None:
    """Pool initializer: one private evaluator per worker, reused across
    tasks (its cache persists, so repeated nominal/gradient points hit)."""
    _WORKER["evaluator"] = Evaluator(template, cache=cache_enabled)


def _task_target(policy, fail_mode):
    """The evaluation target of one pool task: the worker evaluator,
    wrapped in a fresh fault-tolerant facade when the parent runs one
    (fresh => its counters are exactly this task's deltas)."""
    evaluator: Evaluator = _WORKER["evaluator"]  # type: ignore[assignment]
    if policy is None:
        return evaluator, None
    from ..runtime.tolerant import FaultTolerantEvaluator
    guarded = FaultTolerantEvaluator(evaluator, policy, fail_mode)
    return guarded, guarded


def _warm_stats(evaluator: Evaluator) -> Dict[str, int]:
    stats = getattr(evaluator.template, "warm_cache_stats", None)
    return stats() if callable(stats) else {}


def _dc_stats(evaluator: Evaluator) -> Dict[str, int]:
    stats = getattr(evaluator.template, "dc_effort_stats", None)
    return stats() if callable(stats) else {}


def _task_snapshot(evaluator: Evaluator) -> Tuple:
    return (evaluator.request_count, evaluator.cache_hits,
            evaluator.simulation_count, evaluator.cache_size,
            _warm_stats(evaluator), _dc_stats(evaluator))


def _task_counts(evaluator: Evaluator, before: Tuple,
                 guarded) -> TaskCounts:
    from ..circuit.dc import DcEffort, WarmStartCache
    requests0, hits0, simulations0, cache_len0, warm0, dc0 = before
    warm = WarmStartCache.counter_delta(_warm_stats(evaluator), warm0) \
        if warm0 else {}
    dc_after = _dc_stats(evaluator)
    dc = DcEffort.counter_delta(dc_after, dc0) if dc_after or dc0 else {}
    return TaskCounts(
        requests=evaluator.request_count - requests0,
        hits=evaluator.cache_hits - hits0,
        simulations=evaluator.simulation_count - simulations0,
        entries=evaluator.cache_items_since(cache_len0),
        failed=guarded.failed_evaluations if guarded else 0,
        retried=guarded.retried_evaluations if guarded else 0,
        recovered=guarded.recovered_evaluations if guarded else 0,
        warm=warm, dc=dc)


def _pool_worst_case(spec, d: Dict[str, float], theta: Dict[str, float],
                     s_start, multistart: int, seed: int,
                     policy, fail_mode) -> Tuple[object, TaskCounts]:
    """One Eq.-8 worst-case search inside a worker."""
    from ..core.worst_case import find_worst_case_point
    target, guarded = _task_target(policy, fail_mode)
    evaluator: Evaluator = _WORKER["evaluator"]  # type: ignore[assignment]
    before = _task_snapshot(evaluator)
    result = find_worst_case_point(target, spec, d, theta, s_start=s_start,
                                   multistart=multistart, seed=seed)
    return result, _task_counts(evaluator, before, guarded)


def _pool_points(points: List[Tuple[Dict[str, float], np.ndarray,
                                    Dict[str, float]]],
                 policy, fail_mode
                 ) -> Tuple[List[Dict[str, float]], TaskCounts]:
    """Evaluate a list of ``(d, s_hat, theta)`` points inside a worker
    (finite-difference gradient probes)."""
    target, guarded = _task_target(policy, fail_mode)
    evaluator: Evaluator = _WORKER["evaluator"]  # type: ignore[assignment]
    before = _task_snapshot(evaluator)
    values = [dict(target.evaluate(d, s_hat, theta))
              for d, s_hat, theta in points]
    return values, _task_counts(evaluator, before, guarded)


def _pool_chunk_shared(d: Dict[str, float],
                       thetas: List[Dict[str, float]], rows: np.ndarray,
                       policy, fail_mode
                       ) -> Tuple[List[List[Dict[str, float]]], TaskCounts]:
    """Evaluate one Monte-Carlo chunk on the persistent pool."""
    target, guarded = _task_target(policy, fail_mode)
    evaluator: Evaluator = _WORKER["evaluator"]  # type: ignore[assignment]
    before = _task_snapshot(evaluator)
    values = [[dict(target.evaluate(d, row, theta)) for theta in thetas]
              for row in rows]
    return values, _task_counts(evaluator, before, guarded)


def unwrap_pool_stack(evaluator):
    """``(inner, policy, fail_mode)`` when ``evaluator`` is an evaluation
    stack that pool workers can replicate exactly — a plain
    :class:`Evaluator`, or a
    :class:`~repro.runtime.tolerant.FaultTolerantEvaluator` around one —
    else ``None`` (e.g. a fault-injecting wrapper, whose call-order state
    lives in the parent; such stacks must stay serial)."""
    from ..runtime.tolerant import FaultTolerantEvaluator
    if type(evaluator) is Evaluator:
        return evaluator, None, None
    if isinstance(evaluator, FaultTolerantEvaluator) \
            and type(evaluator.inner) is Evaluator:
        return evaluator.inner, evaluator.policy, evaluator.fail_mode
    return None


def fold_task(evaluator, counts: TaskCounts) -> None:
    """Fold one task's effort into the parent evaluation stack.

    With caching on, the fold reconstructs exactly what a serial run
    would have counted: every entry new to the parent cache is one
    simulation + one miss; every entry the parent already holds would
    have been a hit.  Tasks must be folded in a deterministic order (the
    dispatch order), never completion order.
    """
    inner = evaluator
    maybe = unwrap_pool_stack(evaluator)
    if maybe is not None:
        inner = maybe[0]
    if inner.cache_enabled:
        new, duplicate = inner.absorb_cache(counts.entries)
        inner.absorb_counts(simulations=new, requests=counts.requests,
                            cache_hits=counts.hits + duplicate,
                            cache_misses=new)
    else:
        inner.absorb_counts(simulations=counts.simulations,
                            requests=counts.requests,
                            cache_misses=counts.simulations)
    if counts.failed or counts.retried or counts.recovered:
        if hasattr(evaluator, "failed_evaluations"):
            evaluator.failed_evaluations += counts.failed
            evaluator.retried_evaluations += counts.retried
            evaluator.recovered_evaluations += counts.recovered
    if counts.warm and any(counts.warm.values()):
        # Surface the workers' warm-anchor effort in the parent template's
        # counters.  This is a fleet-wide *effort* total (each worker owns
        # a private anchor cache), not a replay of the serial hit pattern.
        warm_cache = getattr(inner.template, "_warm_cache", None)
        if warm_cache is not None:
            warm_cache.absorb(counts.warm)
    if counts.dc and any(counts.dc.values()):
        dc_effort = getattr(inner.template, "_dc_effort", None)
        if dc_effort is not None:
            dc_effort.absorb(counts.dc)


class PoolHandle:
    """A persistent process pool shared across the phases of one run.

    Created once (e.g. per optimizer run) from the run's evaluation
    stack; the worst-case search, the gradient probes and the
    verification Monte-Carlo all submit tasks to the same workers, so
    process spawn and template pickling are paid once.  Each worker owns
    one cached :class:`Evaluator` that persists across tasks.

    A timeout or broken pool marks the handle **dead** (workers are
    terminated); every dispatcher checks :attr:`alive` and falls back to
    its serial path, which by construction produces the same results.
    """

    def __init__(self, template, jobs: int, cache_enabled: bool = True,
                 task_timeout_s: Optional[float] = None):
        if jobs < 2:
            raise ReproError(f"a pool needs jobs >= 2, got {jobs}")
        self.template = template
        self.jobs = jobs
        self.cache_enabled = cache_enabled
        #: per-task wait budget for non-MC tasks (None = wait forever)
        self.task_timeout_s = task_timeout_s
        self.tasks_dispatched = 0
        self._dead = False
        self._pool = futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=_pool_context(),
            initializer=_init_pool_worker,
            initargs=(template, cache_enabled))

    @classmethod
    def for_evaluator(cls, evaluator, jobs: int,
                      task_timeout_s: Optional[float] = None
                      ) -> Optional["PoolHandle"]:
        """A handle for ``evaluator``'s stack, or None when the stack
        cannot be replicated in workers (or ``jobs`` < 2)."""
        if jobs < 2:
            return None
        maybe = unwrap_pool_stack(evaluator)
        if maybe is None:
            return None
        inner = maybe[0]
        return cls(inner.template, jobs, cache_enabled=inner.cache_enabled,
                   task_timeout_s=task_timeout_s)

    @property
    def alive(self) -> bool:
        return not self._dead

    def compatible(self, evaluator) -> bool:
        """True when ``evaluator`` evaluates against this pool's template
        with a worker-replicable stack."""
        maybe = unwrap_pool_stack(evaluator)
        return maybe is not None and maybe[0].template is self.template

    def submit(self, fn, *args) -> futures.Future:
        self.tasks_dispatched += 1
        return self._pool.submit(fn, *args)

    def kill(self) -> None:
        """Terminate the workers and mark the handle dead (used on
        timeout/breakage; all later dispatches degrade to serial)."""
        if not self._dead:
            self._dead = True
            BatchExecutor._kill_pool(self._pool)

    def close(self) -> None:
        """Orderly shutdown at end of run.  Waits for teardown: an
        executor still dismantling itself at interpreter exit races
        CPython's own atexit hook (unlocked ``thread_wakeup.wakeup()``
        against the management thread closing the same pipe), spraying
        "Exception ignored ... Bad file descriptor" on stderr."""
        if not self._dead:
            self._dead = True
            self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "PoolHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def dispatch_points(pool: Optional[PoolHandle], evaluator,
                    points: Sequence[Tuple[Mapping[str, float], np.ndarray,
                                           Mapping[str, float]]]
                    ) -> Optional[List[Dict[str, float]]]:
    """Evaluate ``points`` on the pool, folding effort back in dispatch
    order; returns the value dicts in input order, or None when the pool
    path is unavailable (caller then runs its serial loop).

    A failed or timed-out task is re-evaluated serially on the parent —
    the values and parent-side accounting come out identical either way.
    """
    if pool is None or not pool.alive or not pool.compatible(evaluator) \
            or len(points) < 2:
        return None
    maybe = unwrap_pool_stack(evaluator)
    assert maybe is not None
    _, policy, fail_mode = maybe
    plain = [(dict(d), np.asarray(s_hat, dtype=float), dict(theta))
             for d, s_hat, theta in points]
    size = max(1, math.ceil(len(plain) / pool.jobs))
    chunks = [plain[start:start + size]
              for start in range(0, len(plain), size)]
    pending = [pool.submit(_pool_points, chunk, policy, fail_mode)
               for chunk in chunks]
    values: List[Dict[str, float]] = []
    for chunk, future in zip(chunks, pending):
        chunk_values = None
        if pool.alive:
            try:
                chunk_values, counts = future.result(
                    timeout=pool.task_timeout_s)
                fold_task(evaluator, counts)
            except (futures.TimeoutError, BrokenProcessPool):
                pool.kill()
            except Exception:
                chunk_values = None  # re-run serially below
        if chunk_values is None:
            chunk_values = [dict(evaluator.evaluate(d, s_hat, theta))
                            for d, s_hat, theta in chunk]
        values.extend(chunk_values)
    return values


# -- driver ------------------------------------------------------------------
class BatchExecutor:
    """Drives an :class:`Evaluator` over a sample matrix in batches.

    With a :class:`PoolHandle` attached, batches run on the persistent
    shared pool (when the evaluator stack is worker-replicable); a dead
    handle degrades to the serial path.  Without one, ``config.jobs > 1``
    spawns a throwaway per-call pool (the legacy path).
    """

    def __init__(self, config: Optional[ExecutionConfig] = None,
                 pool: Optional[PoolHandle] = None):
        self.config = config or ExecutionConfig()
        self.pool = pool

    def run(self, evaluator: Evaluator, d: Mapping[str, float],
            thetas: Sequence[Mapping[str, float]],
            matrix: np.ndarray) -> BatchOutcome:
        """Evaluate every row of ``matrix`` at every theta in ``thetas``."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ReproError("sample matrix must be 2-D (n, dim)")
        if not thetas:
            raise ReproError("at least one operating point is required")
        if self.pool is not None:
            compatible = self.pool.compatible(evaluator)
            if self.pool.alive and compatible and matrix.shape[0] > 1:
                return self._run_shared_pool(evaluator, d, thetas, matrix)
            outcome = self._run_serial(evaluator, d, thetas, matrix)
            # Telemetry must name the *reason* the pool went unused: an
            # incompatible stack is flagged even while the pool is
            # healthy, whereas a dead pool only counts as degradation
            # when serial was not the natural path anyway (n == 1 runs
            # serially by design, dead pool or not).
            if not compatible:
                outcome.pool_incompatible = True
            elif not self.pool.alive and matrix.shape[0] > 1:
                outcome.degraded_to_serial = True
            return outcome
        if self.config.jobs == 1 or matrix.shape[0] == 1:
            return self._run_serial(evaluator, d, thetas, matrix)
        return self._run_pool(evaluator, d, thetas, matrix)

    # -- serial ----------------------------------------------------------------
    def _batched_columns(self, evaluator, d: Mapping[str, float],
                         thetas: Sequence[Mapping[str, float]],
                         matrix: np.ndarray
                         ) -> Optional[List[List[Dict[str, float]]]]:
        """In-process evaluation through the sample-batched engine.

        Evaluates column-major — all samples at one theta per
        :meth:`~repro.evaluation.evaluator.Evaluator.evaluate_batch`
        call, so one vectorized simulation covers a whole chunk — then
        transposes back to the row-major output layout.  Values, cache
        contents and counter totals are identical to the scalar
        per-sample loop (the batched engine guarantees bitwise parity;
        column order only permutes *when* each theta's work happens).

        Fault handling replicates the serial stack: a sample whose first
        attempt raised is resumed through the parent's
        :meth:`~repro.runtime.tolerant.FaultTolerantEvaluator.
        resume_after_failure` (same classification, same deterministic
        jitter, same counters).  Without a policy the serial loop would
        propagate the first failure in row-major order, so the earliest
        (row, theta) failure is re-raised.

        Returns None when the evaluation stack is not batchable (a
        non-replicable wrapper); the caller then runs the scalar loop.
        """
        maybe = unwrap_pool_stack(evaluator)
        if maybe is None:
            return None
        inner, policy, _ = maybe
        rows = [np.asarray(row, dtype=float) for row in matrix]
        columns: List[List] = []
        for theta in thetas:
            entries = inner.evaluate_batch(
                d, rows, theta, batch_samples=self.config.batch_samples)
            column: List = []
            for row, entry in zip(rows, entries):
                if isinstance(entry, BaseException) and policy is not None:
                    entry = evaluator.resume_after_failure(
                        d, row, theta, entry)
                column.append(entry)
            columns.append(column)
        for j in range(len(rows)):  # earliest failure in row-major order
            for column in columns:
                if isinstance(column[j], BaseException):
                    raise column[j]
        return [[dict(column[j]) for column in columns]
                for j in range(len(rows))]

    def _run_serial(self, evaluator: Evaluator, d: Mapping[str, float],
                    thetas: Sequence[Mapping[str, float]],
                    matrix: np.ndarray) -> BatchOutcome:
        before = (evaluator.simulation_count, evaluator.request_count,
                  evaluator.cache_hits, evaluator.cache_misses)
        values = None
        if matrix.shape[0] > 1 and self.config.batch_samples != 1:
            values = self._batched_columns(evaluator, d, thetas, matrix)
        if values is None:
            values = [[dict(evaluator.evaluate(d, row, theta))
                       for theta in thetas] for row in matrix]
        return BatchOutcome(
            values=values,
            simulations=evaluator.simulation_count - before[0],
            requests=evaluator.request_count - before[1],
            cache_hits=evaluator.cache_hits - before[2],
            cache_misses=evaluator.cache_misses - before[3],
            backend="serial", jobs=1, chunks=1)

    # -- process pool ----------------------------------------------------------
    def _chunk_bounds(self, n: int) -> List[Tuple[int, int]]:
        size = self.config.chunk_size
        if size is None:
            size = max(1, math.ceil(n / (self.config.jobs
                                         * _CHUNKS_PER_WORKER)))
        return [(start, min(start + size, n)) for start in range(0, n, size)]

    def _retry_chunk(self, evaluator: Evaluator, d: Mapping[str, float],
                     thetas: Sequence[Mapping[str, float]],
                     rows: np.ndarray, error: BaseException
                     ) -> List[List[Dict[str, float]]]:
        """In-parent serial re-run of one failed chunk (counts on the
        parent evaluator directly)."""
        last: BaseException = error
        for _ in range(self.config.retries):
            try:
                return [[dict(evaluator.evaluate(d, row, theta))
                         for theta in thetas] for row in rows]
            except Exception as exc:
                last = exc
        raise ReproError(
            f"batch chunk failed after {self.config.retries} "
            f"retr{'y' if self.config.retries == 1 else 'ies'}: {last}"
        ) from last

    @staticmethod
    def _kill_pool(pool: futures.ProcessPoolExecutor) -> None:
        """Tear a (possibly wedged) pool down without waiting.

        ``Future.cancel`` has no effect on a *running* future, so a hung
        worker would outlive the run if we merely shut the executor
        down; terminate the worker processes explicitly (and escalate to
        SIGKILL if termination does not take).  The process list must be
        snapshotted *before* ``shutdown``, which drops the pool's
        reference to it."""
        processes = list((getattr(pool, "_processes", None) or {})
                         .values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=1.0)

    @staticmethod
    def _harvest_finished(future):
        """The payload of a future that completed *before* the pool
        died, else None (cancelled / still running / poisoned)."""
        if not future.done() or future.cancelled():
            return None
        try:
            return future.result(timeout=0)
        except Exception:
            return None

    # -- persistent shared pool ------------------------------------------------
    def _run_shared_pool(self, evaluator, d: Mapping[str, float],
                         thetas: Sequence[Mapping[str, float]],
                         matrix: np.ndarray) -> BatchOutcome:
        pool = self.pool
        assert pool is not None
        maybe = unwrap_pool_stack(evaluator)
        assert maybe is not None
        inner, policy, fail_mode = maybe
        n = matrix.shape[0]
        size = self.config.chunk_size
        if size is None:
            size = max(1, math.ceil(n / (pool.jobs * _CHUNKS_PER_WORKER)))
        bounds = [(start, min(start + size, n))
                  for start in range(0, n, size)]
        d_plain = dict(d)
        thetas_plain = [dict(theta) for theta in thetas]
        outcome = BatchOutcome(values=[[] for _ in range(n)],
                               backend="process-pool", jobs=pool.jobs,
                               chunks=len(bounds))
        before = (inner.simulation_count, inner.request_count,
                  inner.cache_hits, inner.cache_misses)
        pending = [pool.submit(_pool_chunk_shared, d_plain, thetas_plain,
                               matrix[start:end], policy, fail_mode)
                   for start, end in bounds]
        for (start, end), future in zip(bounds, pending):
            values = None
            if pool.alive:
                try:
                    values, counts = future.result(
                        timeout=self.config.timeout_s)
                    fold_task(evaluator, counts)
                except futures.TimeoutError:
                    outcome.timed_out_chunks += 1
                    pool.kill()
                except BrokenProcessPool:
                    pool.kill()
                except Exception as exc:
                    outcome.retried_chunks += 1
                    values = self._retry_chunk(evaluator, d_plain,
                                               thetas_plain,
                                               matrix[start:end], exc)
            if values is None:
                # The shared pool died: harvest what finished, run the
                # rest serially in the parent (results are identical).
                outcome.degraded_to_serial = True
                harvest = self._harvest_finished(future)
                if harvest is not None:
                    values, counts = harvest
                    fold_task(evaluator, counts)
                else:
                    outcome.retried_chunks += 1
                    values = self._retry_chunk(
                        evaluator, d_plain, thetas_plain,
                        matrix[start:end],
                        ReproError("shared worker pool died"))
            for offset, per_theta in enumerate(values):
                outcome.values[start + offset] = per_theta
        outcome.simulations = inner.simulation_count - before[0]
        outcome.requests = inner.request_count - before[1]
        outcome.cache_hits = inner.cache_hits - before[2]
        outcome.cache_misses = inner.cache_misses - before[3]
        return outcome

    def _run_pool(self, evaluator: Evaluator, d: Mapping[str, float],
                  thetas: Sequence[Mapping[str, float]],
                  matrix: np.ndarray) -> BatchOutcome:
        n = matrix.shape[0]
        bounds = self._chunk_bounds(n)
        jobs = min(self.config.jobs, len(bounds))
        d_plain = dict(d)
        thetas_plain = [dict(theta) for theta in thetas]
        outcome = BatchOutcome(values=[[] for _ in range(n)],
                               backend="process-pool", jobs=jobs,
                               chunks=len(bounds))
        pool_counts = [0, 0, 0, 0]  # sims, requests, hits, misses

        def fold(counts: Tuple[int, int, int, int]) -> None:
            for i, delta in enumerate(counts):
                pool_counts[i] += delta

        pool = futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(evaluator.template, evaluator.cache_enabled,
                      d_plain, thetas_plain))
        pool_dead: Optional[BaseException] = None
        try:
            pending = [(start, end,
                        pool.submit(_run_chunk, start, matrix[start:end]))
                       for start, end in bounds]
            for start, end, future in pending:
                values = None
                if pool_dead is None:
                    try:
                        (_, values, *counts) = future.result(
                            timeout=self.config.timeout_s)
                        fold(tuple(counts))
                    except futures.TimeoutError as exc:
                        # A wedged worker: kill the pool (the hung
                        # process must not outlive the run) and degrade
                        # the rest of the batch to serial execution.
                        outcome.timed_out_chunks += 1
                        pool_dead = exc
                        self._kill_pool(pool)
                    except BrokenProcessPool as exc:
                        # Dead pool: retrying chunk-by-chunk against it
                        # would fail every time.  Degrade to serial.
                        pool_dead = exc
                        self._kill_pool(pool)
                    except Exception as exc:
                        outcome.retried_chunks += 1
                        # The retry runs on the parent evaluator, so its
                        # counter deltas land there directly.
                        values = self._retry_chunk(evaluator, d_plain,
                                                   thetas_plain,
                                                   matrix[start:end], exc)
                if values is None:
                    # The pool died: harvest chunks that finished before
                    # the collapse, run the rest serially in the parent.
                    outcome.degraded_to_serial = True
                    harvest = self._harvest_finished(future)
                    if harvest is not None:
                        (_, values, *counts) = harvest
                        fold(tuple(counts))
                    else:
                        outcome.retried_chunks += 1
                        values = self._retry_chunk(evaluator, d_plain,
                                                   thetas_plain,
                                                   matrix[start:end],
                                                   pool_dead)
                for offset, per_theta in enumerate(values):
                    outcome.values[start + offset] = per_theta
        finally:
            # Wait: every future is already resolved here (or its worker
            # terminated by _kill_pool), and a shutdown still in flight at
            # interpreter exit races CPython's atexit wakeup of the same
            # executor (stderr "Bad file descriptor" noise).
            pool.shutdown(wait=True, cancel_futures=True)
        # Fold worker-side effort into the parent's accounting (retried
        # chunks already counted themselves on the parent evaluator).
        evaluator.absorb_counts(
            simulations=pool_counts[0], requests=pool_counts[1],
            cache_hits=pool_counts[2], cache_misses=pool_counts[3])
        outcome.simulations = pool_counts[0]
        outcome.requests = pool_counts[1]
        outcome.cache_hits = pool_counts[2]
        outcome.cache_misses = pool_counts[3]
        return outcome
