"""Per-run telemetry for yield-estimation runs.

Every estimator produces a :class:`RunReport` alongside its numeric
result: how many simulations were spent, how many evaluator requests were
answered from cache, how the batch executor split the work, and the wall
time of each phase (sample drawing, simulation, statistical reduction).
The report is a plain JSON-serializable record, so it can be logged,
diffed across runs, or attached to Table-7 style effort accounting.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class RunReport:
    """Telemetry of one yield-estimation run (JSON-serializable)."""

    estimator: str = ""
    n_samples: int = 0
    #: distinct worst-case operating corners simulated per sample
    theta_groups: int = 0
    #: simulator calls actually spent by this run
    simulations: int = 0
    #: evaluator requests issued (simulations + cache hits)
    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: executor backend ("serial" or "process-pool")
    backend: str = "serial"
    jobs: int = 1
    chunks: int = 0
    retried_chunks: int = 0
    timed_out_chunks: int = 0
    #: samples whose evaluation failed under the fault policy and were
    #: counted as violating every spec (NaN performance records)
    failed_samples: int = 0
    #: retry-with-jitter attempts the fault policy issued during this run
    retried_evaluations: int = 0
    #: True when a dead/wedged process pool forced the remainder of the
    #: batch onto the serial in-parent path
    degraded_to_serial: bool = False
    #: True when an *alive* shared pool could not serve the run's
    #: evaluation stack (template mismatch / non-replicable wrapper) and
    #: the batch silently ran serially instead
    pool_incompatible: bool = False
    #: warm-start cache counter *deltas* accrued during this run
    #: (hits/misses/chain_seeds/chain_solves/evictions), when the
    #: template exposes a warm cache; empty otherwise.  Additive across
    #: shards/workers like the other counters.
    warm_cache: Dict[str, int] = field(default_factory=dict)
    #: per-strategy DC solve counter *deltas* accrued during this run
    #: (newton-warm/newton/gmin-stepping/source-stepping/failed), when
    #: the template exposes DC effort counters; empty otherwise.
    #: Additive across shards/workers like the other counters.
    dc_effort: Dict[str, int] = field(default_factory=dict)
    #: wall time per phase, seconds
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def wall_time_s(self) -> float:
        return float(sum(self.phase_seconds.values()))

    def to_dict(self) -> Dict:
        return {
            "estimator": self.estimator,
            "n_samples": self.n_samples,
            "theta_groups": self.theta_groups,
            "simulations": self.simulations,
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "backend": self.backend,
            "jobs": self.jobs,
            "chunks": self.chunks,
            "retried_chunks": self.retried_chunks,
            "timed_out_chunks": self.timed_out_chunks,
            "failed_samples": self.failed_samples,
            "retried_evaluations": self.retried_evaluations,
            "degraded_to_serial": self.degraded_to_serial,
            "pool_incompatible": self.pool_incompatible,
            "warm_cache": dict(self.warm_cache),
            "dc_effort": dict(self.dc_effort),
            "phase_seconds": dict(self.phase_seconds),
            "wall_time_s": self.wall_time_s,
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Dict) -> "RunReport":
        """Inverse of :meth:`to_dict` (``wall_time_s`` is derived and
        ignored); used by checkpoint restore."""
        return cls(
            estimator=data.get("estimator", ""),
            n_samples=int(data.get("n_samples", 0)),
            theta_groups=int(data.get("theta_groups", 0)),
            simulations=int(data.get("simulations", 0)),
            requests=int(data.get("requests", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            backend=data.get("backend", "serial"),
            jobs=int(data.get("jobs", 1)),
            chunks=int(data.get("chunks", 0)),
            retried_chunks=int(data.get("retried_chunks", 0)),
            timed_out_chunks=int(data.get("timed_out_chunks", 0)),
            failed_samples=int(data.get("failed_samples", 0)),
            retried_evaluations=int(data.get("retried_evaluations", 0)),
            degraded_to_serial=bool(data.get("degraded_to_serial",
                                             False)),
            pool_incompatible=bool(data.get("pool_incompatible", False)),
            warm_cache={k: int(v)
                        for k, v in data.get("warm_cache", {}).items()},
            dc_effort={k: int(v)
                       for k, v in data.get("dc_effort", {}).items()},
            phase_seconds=dict(data.get("phase_seconds", {})))


@dataclass
class SimulatorHealth:
    """Run-level aggregation of the failure telemetry of many
    :class:`RunReport` instances (one per verification call of an
    optimization run): how often the simulator misbehaved and how the
    runtime absorbed it.  Attached to Table-7 style effort summaries so
    a run's health is visible next to its cost."""

    runs: int = 0
    failed_samples: int = 0
    retried_evaluations: int = 0
    retried_chunks: int = 0
    timed_out_chunks: int = 0
    degraded_runs: int = 0
    incompatible_runs: int = 0

    @classmethod
    def from_reports(cls, reports) -> "SimulatorHealth":
        health = cls()
        for report in reports:
            if report is None:
                continue
            health.runs += 1
            health.failed_samples += report.failed_samples
            health.retried_evaluations += report.retried_evaluations
            health.retried_chunks += report.retried_chunks
            health.timed_out_chunks += report.timed_out_chunks
            health.degraded_runs += int(report.degraded_to_serial)
            health.incompatible_runs += int(
                getattr(report, "pool_incompatible", False))
        return health

    @property
    def no_data(self) -> bool:
        """True when no telemetry was ever collected (every report was
        ``None``) — a run with nothing to aggregate is *unknown*, not
        healthy."""
        return self.runs == 0

    @property
    def clean(self) -> bool:
        """True when telemetry was collected and no failure-handling
        machinery ever fired.  A run with no telemetry at all
        (:attr:`no_data`) is not clean — it is unobserved."""
        return not self.no_data and not (
            self.failed_samples or self.retried_evaluations
            or self.retried_chunks or self.timed_out_chunks
            or self.degraded_runs or self.incompatible_runs)

    def to_dict(self) -> Dict:
        return {
            "runs": self.runs,
            "failed_samples": self.failed_samples,
            "retried_evaluations": self.retried_evaluations,
            "retried_chunks": self.retried_chunks,
            "timed_out_chunks": self.timed_out_chunks,
            "degraded_runs": self.degraded_runs,
            "incompatible_runs": self.incompatible_runs,
        }


class PhaseTimer:
    """Context manager accumulating wall time into ``report.phase_seconds``.

    Re-entering the same phase accumulates (the executor's retry path
    re-opens the "simulate" phase)."""

    def __init__(self, report: RunReport, phase: str):
        self.report = report
        self.phase = phase
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        seconds = self.report.phase_seconds
        seconds[self.phase] = seconds.get(self.phase, 0.0) + elapsed
