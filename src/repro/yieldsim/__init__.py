"""Pluggable yield-estimation subsystem.

One interface (:class:`YieldEstimator` -> :class:`YieldResult`), three
estimators, one parallel batch engine underneath:

* :class:`OperationalMC` — the paper's Eq. 6-7 verifier (i.i.d. sampling,
  Wilson intervals); the default, and the reference the others are
  validated against,
* :class:`MeanShiftIS`  — mixture importance sampling centered on the
  Eq. 8 worst-case points, with self-normalized likelihood-ratio weights
  and ESS diagnostics; the winner near 0 %/100 % yield,
* :class:`SobolQMC`     — scrambled low-discrepancy sampling via
  ``SampleSet.draw_sobol``; the winner at moderate yields on smooth
  integrands,

* :class:`BatchExecutor` / :class:`ExecutionConfig` — serial or
  process-pool execution with chunking, per-chunk timeout + retry, and
  deterministic result ordering regardless of worker count,
* :class:`RunReport` — JSON-serializable per-run telemetry (simulations,
  cache hits, wall time per phase),
* :class:`ShardPlan` / :func:`merge_results` — deterministic sub-stream
  partitioning of one verification run across machines and the exact
  merge of the per-shard results (pooled sufficient statistics, folded
  telemetry); see :mod:`repro.yieldsim.shard`.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ReproError
from .base import SampleEvaluation, YieldEstimator
from .executor import (BatchExecutor, BatchOutcome, ExecutionConfig,
                       PoolHandle, dispatch_points)
from .importance import MeanShiftIS, shifts_from_worst_case
from .operational import OperationalMC
from .qmc import SobolQMC
from .result import SpecMoments, SufficientStats, YieldResult
from .shard import ShardPlan, merge_reports, merge_results, merge_stats
from .telemetry import PhaseTimer, RunReport, SimulatorHealth

#: Registered estimators by CLI short name.
ESTIMATORS = {
    OperationalMC.name: OperationalMC,
    MeanShiftIS.name: MeanShiftIS,
    SobolQMC.name: SobolQMC,
}


def make_estimator(name: str, jobs: int = 1,
                   chunk_size: Optional[int] = None,
                   timeout_s: Optional[float] = None,
                   batch_samples: Optional[int] = None,
                   **kwargs) -> YieldEstimator:
    """Build a registered estimator with an execution configuration.

    ``name`` is one of ``mc`` / ``is`` / ``qmc``; extra keyword arguments
    go to the estimator constructor.  ``batch_samples`` sizes the
    in-process vectorized simulation chunks (None = template default,
    1 = scalar path); it changes throughput only, never results.
    """
    try:
        cls = ESTIMATORS[name]
    except KeyError:
        raise ReproError(
            f"unknown estimator {name!r}; choose from "
            f"{', '.join(sorted(ESTIMATORS))}")
    execution = ExecutionConfig(jobs=jobs, chunk_size=chunk_size,
                                timeout_s=timeout_s,
                                batch_samples=batch_samples)
    return cls(execution=execution, **kwargs)


__all__ = [
    "BatchExecutor", "BatchOutcome", "ESTIMATORS", "ExecutionConfig",
    "MeanShiftIS", "OperationalMC", "PhaseTimer", "PoolHandle",
    "RunReport", "SampleEvaluation", "ShardPlan", "SimulatorHealth",
    "SobolQMC", "SpecMoments", "SufficientStats", "YieldEstimator",
    "YieldResult", "dispatch_points", "make_estimator", "merge_reports",
    "merge_results", "merge_stats", "shifts_from_worst_case",
]
