"""repro — reproduction of Schenkel et al., DAC 2001.

"Mismatch Analysis and Direct Yield Optimization by Spec-Wise Linearization
and Feasibility-Guided Search."

Subpackages:

* ``repro.circuit``    — the MNA circuit simulator substrate,
* ``repro.pdk``        — the synthetic CMOS process kit,
* ``repro.statistics`` — distributions, Pelgrom mismatch, the C(d)/G(d)
  variance transform of Sec. 4,
* ``repro.spec``       — performance specifications and operating ranges,
* ``repro.evaluation`` — testbenches and the counted performance evaluator,
* ``repro.core``       — worst-case points (Eq. 8), the mismatch measure
  (Eq. 9), spec-wise linearization (Eq. 16), the linearized Monte-Carlo
  yield estimator (Eq. 17-20) and the feasibility-guided yield optimizer
  (Fig. 6),
* ``repro.circuits``   — the paper's benchmark circuits (folded-cascode and
  Miller opamps),
* ``repro.yieldsim``   — pluggable yield estimators (MC / IS / QMC) and
  the parallel batch executor,
* ``repro.runtime``    — fault-tolerant optimization runtime: fault
  policies, retry-with-jitter, budgets, checkpoint/resume, fault
  injection,
* ``repro.reporting``  — paper-style result tables.

Quickstart::

    from repro.circuits import MillerOpamp
    from repro.core import YieldOptimizer, OptimizerConfig

    result = YieldOptimizer(MillerOpamp(),
                            OptimizerConfig(max_iterations=3)).run()
    print(result.final.yield_mc)
"""

__version__ = "1.0.0"

from . import (circuit, circuits, core, errors, evaluation, pdk, reporting,
               runtime, spec, statistics, units, yieldsim)

__all__ = ["circuit", "circuits", "core", "errors", "evaluation", "pdk",
           "reporting", "runtime", "spec", "statistics", "units",
           "yieldsim", "__version__"]
