"""Smooth SPICE level-1 MOS transistor model with analytic derivatives.

The yield-optimization algorithm treats the simulator as a black box, but it
relies on a few qualitative properties of real MOS circuits:

* performances are weakly nonlinear inside the feasibility region,
* the drain current depends on threshold voltage and gain factor, so both
  global shifts and local (mismatch) perturbations of ``VTO``/``KP`` have
  first-order effect,
* device variance scales with ``1/(W*L)`` (Pelgrom), which couples the
  statistical model to the design parameters.

A level-1 (Shichman-Hodges) model with channel-length modulation, body
effect and temperature dependence reproduces all of these.  The classic
hard cutoff is replaced by a *softplus* smoothing of the overdrive voltage
so the drain current and its derivatives are continuous everywhere; this is
essential for the robustness of the Newton DC solver and of the
finite-difference gradients used by the worst-case point search.

All equations are written for an NMOS device; PMOS devices are evaluated by
polarity reflection in :class:`~repro.circuit.devices.Mosfet`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..units import KELVIN_OFFSET

#: Reference temperature for model parameters, in Celsius.
NOMINAL_TEMP_C = 27.0

#: Width of the softplus smoothing of the overdrive voltage, in volts.  Small
#: enough that strong-inversion currents are unaffected (<0.1% above 100 mV
#: overdrive), large enough to give Newton a continuous path through cutoff.
DEFAULT_SMOOTHING_V = 4e-3


@dataclass(frozen=True)
class MosModel:
    """Technology card of a level-1 MOS transistor.

    Parameters follow SPICE naming.  ``polarity`` is +1 for NMOS and -1 for
    PMOS.  ``lambda_`` carries the trailing underscore because ``lambda`` is
    a Python keyword; it is the channel-length-modulation coefficient for a
    1 um long device and is scaled as ``lambda_ / L[um]`` so long-channel
    devices show higher output resistance, as in real processes.
    """

    name: str
    polarity: int  # +1 NMOS, -1 PMOS
    vto: float  # zero-bias threshold voltage [V] (negative for PMOS)
    kp: float  # transconductance parameter [A/V^2]
    lambda_: float  # channel-length modulation for L = 1 um [1/V]
    gamma: float = 0.5  # body-effect coefficient [sqrt(V)]
    phi: float = 0.7  # surface potential [V]
    tox: float = 7.6e-9  # gate-oxide thickness [m]
    cgso: float = 1.2e-10  # G-S overlap capacitance per width [F/m]
    cgdo: float = 1.2e-10  # G-D overlap capacitance per width [F/m]
    cj: float = 9e-4  # junction capacitance per area [F/m^2]
    ldif: float = 0.8e-6  # source/drain diffusion length [m]
    tcv: float = 1.5e-3  # threshold temperature coefficient [V/K]
    bex: float = -1.5  # mobility temperature exponent
    smoothing: float = DEFAULT_SMOOTHING_V

    #: Permittivity of SiO2 [F/m].
    EPS_OX: float = field(default=3.45e-11, repr=False)

    @property
    def cox(self) -> float:
        """Gate-oxide capacitance per area [F/m^2]."""
        return self.EPS_OX / self.tox

    def at_temperature(self, temp_c: float) -> "MosModel":
        """Return a copy with ``vto`` and ``kp`` moved to ``temp_c``.

        The threshold magnitude drops by ``tcv`` per Kelvin and mobility
        follows a power law with exponent ``bex``, the standard first-order
        temperature behaviour of MOS devices.
        """
        if temp_c == NOMINAL_TEMP_C:
            return self
        dt = temp_c - NOMINAL_TEMP_C
        t_ratio = (temp_c + KELVIN_OFFSET) / (NOMINAL_TEMP_C + KELVIN_OFFSET)
        vto_t = self.vto - self.polarity * self.tcv * dt
        kp_t = self.kp * t_ratio**self.bex
        return replace(self, vto=vto_t, kp=kp_t)

    def perturbed(self, delta_vto: float = 0.0, beta_factor: float = 1.0) -> "MosModel":
        """Return a copy with the statistical perturbations applied.

        ``delta_vto`` shifts the threshold *magnitude* (positive values make
        either polarity harder to turn on) and ``beta_factor`` scales the
        gain factor ``kp`` multiplicatively.  This is the hook through which
        both global process variation and local mismatch enter the
        simulator.
        """
        if delta_vto == 0.0 and beta_factor == 1.0:
            return self
        return replace(
            self,
            vto=self.vto + self.polarity * delta_vto,
            kp=self.kp * beta_factor,
        )


@dataclass
class MosEval:
    """Result of one large-signal model evaluation (NMOS convention).

    ``ids`` is the drain-to-source current; the conductances are the partial
    derivatives used to stamp the Newton Jacobian.  ``region`` is a
    human-readable operating-region label and ``vdsat`` the saturation
    voltage, both consumed by the feasibility constraints (Sec. 5.1).
    """

    ids: float
    gm: float
    gds: float
    gmb: float
    vth: float
    vdsat: float
    vov: float
    region: str


def _softplus(x: float, width: float) -> tuple[float, float]:
    """Numerically safe softplus ``width * log(1 + exp(x / width))``.

    Returns the value and its derivative (the logistic function).  For
    ``|x| >> width`` it degenerates to ``max(x, 0)`` without overflow.

    Uses ``np.exp`` / ``np.log1p`` (not :mod:`math`) so the scalar path
    is bitwise identical to the vectorized :func:`softplus_batch` — the
    two libm implementations differ in the last ulp for some arguments,
    and the sample-batched engine's parity guarantee rests on both paths
    computing the same bits.
    """
    t = x / width
    if t > 35.0:
        return x, 1.0
    if t < -35.0:
        e = float(np.exp(t))
        return width * e, e
    e = float(np.exp(t))
    return width * float(np.log1p(e)), e / (1.0 + e)


def softplus_batch(x: np.ndarray, width: float
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`_softplus`, elementwise bitwise identical."""
    t = x / width
    value = np.empty_like(t)
    slope = np.empty_like(t)
    hi = t > 35.0
    lo = t < -35.0
    mid = ~(hi | lo)
    value[hi] = x[hi]
    slope[hi] = 1.0
    e_lo = np.exp(t[lo])
    value[lo] = width * e_lo
    slope[lo] = e_lo
    e = np.exp(t[mid])
    value[mid] = width * np.log1p(e)
    slope[mid] = e / (1.0 + e)
    return value, slope


def evaluate_nmos(
    model: MosModel,
    w: float,
    l: float,
    vgs: float,
    vds: float,
    vbs: float,
) -> MosEval:
    """Evaluate the level-1 equations for an NMOS-convention device.

    ``vds`` must be non-negative; the caller (:class:`Mosfet`) performs the
    source/drain swap for reverse operation and the polarity reflection for
    PMOS.  Returns current and all partial derivatives.
    """
    # --- threshold with body effect -------------------------------------
    # vth = vto + gamma * (sqrt(phi - vbs) - sqrt(phi)); the sqrt argument is
    # clamped smoothly so forward body bias cannot produce a NaN.  The
    # zero-bias threshold is polarity-reflected so a PMOS card with
    # vto = -0.65 V presents +0.65 V to these NMOS-convention equations.
    vto_eff = model.polarity * model.vto
    phi = model.phi
    arg = phi - vbs
    arg_min = 0.05
    if arg < arg_min:
        # Quadratic clamp: value and slope continuous at arg_min.
        sq = math.sqrt(arg_min)
        dsq_darg = 0.5 / sq
        sqrt_term = sq + dsq_darg * (arg - arg_min)
        if sqrt_term < 0.5 * sq:
            sqrt_term = 0.5 * sq
            dsq_darg = 0.0
    else:
        sqrt_term = math.sqrt(arg)
        dsq_darg = 0.5 / sqrt_term
    vth = vto_eff + model.gamma * (sqrt_term - math.sqrt(phi))
    dvth_dvbs = -model.gamma * dsq_darg

    # --- smoothed overdrive ---------------------------------------------
    vov_raw = vgs - vth
    vov, dvov = _softplus(vov_raw, model.smoothing)
    # vov depends on vgs (directly) and vbs (through vth).

    # --- channel-length modulation ---------------------------------------
    lam = model.lambda_ / (l * 1e6)  # reference length 1 um
    beta = model.kp * (w / l)
    clm = 1.0 + lam * vds

    vdsat = vov
    if vds >= vdsat:
        # Saturation: ids = beta/2 * vov^2 * (1 + lam*vds)
        ids = 0.5 * beta * vov * vov * clm
        dids_dvov = beta * vov * clm
        gds = 0.5 * beta * vov * vov * lam
        region = "saturation" if vov_raw > 0 else "cutoff"
    else:
        # Triode: ids = beta * (vov - vds/2) * vds * (1 + lam*vds)
        ids = beta * (vov - 0.5 * vds) * vds * clm
        dids_dvov = beta * vds * clm
        gds = beta * ((vov - vds) * clm + (vov - 0.5 * vds) * vds * lam)
        region = "triode" if vov_raw > 0 else "cutoff"

    gm = dids_dvov * dvov
    gmb = dids_dvov * dvov * (-dvth_dvbs)

    return MosEval(
        ids=ids,
        gm=gm,
        gds=gds,
        gmb=gmb,
        vth=vth,
        vdsat=vdsat,
        vov=vov_raw,
        region=region,
    )


#: integer region codes used by the vectorized evaluation
REGION_SATURATION = 0
REGION_TRIODE = 1
REGION_CUTOFF = 2
REGION_NAMES = ("saturation", "triode", "cutoff")


def evaluate_nmos_batch(
    model: MosModel,
    w: float,
    l: float,
    vgs: np.ndarray,
    vds: np.ndarray,
    vbs: np.ndarray,
    vto: Optional[np.ndarray] = None,
    kp: Optional[np.ndarray] = None,
) -> dict:
    """Vectorized :func:`evaluate_nmos` over a sample axis.

    ``vgs``/``vds``/``vbs`` are per-sample arrays for **one** device
    (fixed ``w``, ``l``); ``vto``/``kp`` optionally carry per-sample
    statistical perturbations of the model card (already
    temperature-adjusted, i.e. what ``MosModel.perturbed`` would have
    produced per sample).  Every arithmetic step mirrors the scalar
    function operation-for-operation, so each slice of the result is
    bitwise identical to the corresponding scalar call — the property
    the sample-batched Newton engine's parity guarantee rests on.

    Returns a dict of arrays: ``ids, gm, gds, gmb, vth, vdsat, vov,
    region`` (integer codes indexing :data:`REGION_NAMES`).
    """
    vgs = np.asarray(vgs, dtype=float)
    vds = np.asarray(vds, dtype=float)
    vbs = np.asarray(vbs, dtype=float)
    vto_arr = np.full_like(vgs, model.vto) if vto is None \
        else np.asarray(vto, dtype=float)
    kp_arr = np.full_like(vgs, model.kp) if kp is None \
        else np.asarray(kp, dtype=float)

    # --- threshold with body effect -------------------------------------
    vto_eff = model.polarity * vto_arr
    phi = model.phi
    arg = phi - vbs
    arg_min = 0.05
    sq = math.sqrt(arg_min)
    clamped = arg < arg_min
    sqrt_term = np.empty_like(arg)
    dsq_darg = np.empty_like(arg)
    # Quadratic clamp branch (value and slope continuous at arg_min).
    c_slope = 0.5 / sq
    lin = sq + c_slope * (arg[clamped] - arg_min)
    floor = lin < 0.5 * sq
    d_c = np.full(lin.shape, c_slope)
    lin[floor] = 0.5 * sq
    d_c[floor] = 0.0
    sqrt_term[clamped] = lin
    dsq_darg[clamped] = d_c
    ok = ~clamped
    root = np.sqrt(arg[ok])
    sqrt_term[ok] = root
    dsq_darg[ok] = 0.5 / root
    vth = vto_eff + model.gamma * (sqrt_term - math.sqrt(phi))
    dvth_dvbs = -model.gamma * dsq_darg

    # --- smoothed overdrive ---------------------------------------------
    vov_raw = vgs - vth
    vov, dvov = softplus_batch(vov_raw, model.smoothing)

    # --- channel-length modulation ---------------------------------------
    lam = model.lambda_ / (l * 1e6)
    beta = kp_arr * (w / l)
    clm = 1.0 + lam * vds

    vdsat = vov
    sat = vds >= vdsat
    tri = ~sat
    ids = np.empty_like(vgs)
    dids_dvov = np.empty_like(vgs)
    gds = np.empty_like(vgs)
    # Saturation: ids = beta/2 * vov^2 * (1 + lam*vds)
    b_s, v_s, c_s = beta[sat], vov[sat], clm[sat]
    ids[sat] = 0.5 * b_s * v_s * v_s * c_s
    dids_dvov[sat] = b_s * v_s * c_s
    gds[sat] = 0.5 * b_s * v_s * v_s * lam
    # Triode: ids = beta * (vov - vds/2) * vds * (1 + lam*vds)
    b_t, v_t, d_t, c_t = beta[tri], vov[tri], vds[tri], clm[tri]
    ids[tri] = b_t * (v_t - 0.5 * d_t) * d_t * c_t
    dids_dvov[tri] = b_t * d_t * c_t
    gds[tri] = b_t * ((v_t - d_t) * c_t + (v_t - 0.5 * d_t) * d_t * lam)

    region = np.where(vov_raw > 0,
                      np.where(sat, REGION_SATURATION, REGION_TRIODE),
                      REGION_CUTOFF)

    gm = dids_dvov * dvov
    gmb = dids_dvov * dvov * (-dvth_dvbs)

    return {
        "ids": ids, "gm": gm, "gds": gds, "gmb": gmb,
        "vth": vth, "vdsat": vdsat, "vov": vov_raw, "region": region,
    }


def evaluate_nmos_stacked(
    phi: np.ndarray,
    gamma: np.ndarray,
    smoothing: np.ndarray,
    lam: np.ndarray,
    w_over_l: np.ndarray,
    vto_eff: np.ndarray,
    kp: np.ndarray,
    vgs: np.ndarray,
    vds: np.ndarray,
    vbs: np.ndarray,
) -> dict:
    """:func:`evaluate_nmos_batch` over a ``(samples, devices)`` plane.

    One call covers every transistor of a sample-batched Newton
    iteration instead of one call per device: the per-device model-card
    scalars arrive as ``(devices,)`` rows (``lam`` and ``w_over_l``
    pre-divided with the exact scalar expressions ``lambda_ / (l * 1e6)``
    and ``w / l``; ``vto_eff`` already polarity-reflected and combined
    with the per-sample threshold shifts) and broadcast against the
    ``(samples, devices)`` voltage matrices.  Every operation is
    elementwise, so each entry is bitwise identical to the per-device
    :func:`evaluate_nmos_batch` call — the stacking changes only the
    array shapes the ufuncs see, never the per-element arithmetic.
    """
    # --- threshold with body effect -------------------------------------
    arg = phi - vbs
    arg_min = 0.05
    sq = math.sqrt(arg_min)
    clamped = arg < arg_min
    sqrt_term = np.empty_like(arg)
    dsq_darg = np.empty_like(arg)
    c_slope = 0.5 / sq
    lin = sq + c_slope * (arg[clamped] - arg_min)
    floor = lin < 0.5 * sq
    d_c = np.full(lin.shape, c_slope)
    lin[floor] = 0.5 * sq
    d_c[floor] = 0.0
    sqrt_term[clamped] = lin
    dsq_darg[clamped] = d_c
    ok = ~clamped
    root = np.sqrt(arg[ok])
    sqrt_term[ok] = root
    dsq_darg[ok] = 0.5 / root
    vth = vto_eff + gamma * (sqrt_term - np.sqrt(phi))
    dvth_dvbs = -gamma * dsq_darg

    # --- smoothed overdrive ---------------------------------------------
    vov_raw = vgs - vth
    width = np.broadcast_to(smoothing, vov_raw.shape)
    t = vov_raw / width
    vov = np.empty_like(t)
    dvov = np.empty_like(t)
    hi = t > 35.0
    lo = t < -35.0
    mid = ~(hi | lo)
    vov[hi] = vov_raw[hi]
    dvov[hi] = 1.0
    e_lo = np.exp(t[lo])
    vov[lo] = width[lo] * e_lo
    dvov[lo] = e_lo
    e = np.exp(t[mid])
    vov[mid] = width[mid] * np.log1p(e)
    dvov[mid] = e / (1.0 + e)

    # --- channel-length modulation ---------------------------------------
    beta = kp * w_over_l
    clm = 1.0 + lam * vds

    vdsat = vov
    sat = vds >= vdsat
    tri = ~sat
    ids = np.empty_like(vgs)
    dids_dvov = np.empty_like(vgs)
    gds = np.empty_like(vgs)
    lam_full = np.broadcast_to(lam, vgs.shape)
    # Saturation: ids = beta/2 * vov^2 * (1 + lam*vds)
    b_s, v_s, c_s = beta[sat], vov[sat], clm[sat]
    ids[sat] = 0.5 * b_s * v_s * v_s * c_s
    dids_dvov[sat] = b_s * v_s * c_s
    gds[sat] = 0.5 * b_s * v_s * v_s * lam_full[sat]
    # Triode: ids = beta * (vov - vds/2) * vds * (1 + lam*vds)
    b_t, v_t, d_t, c_t = beta[tri], vov[tri], vds[tri], clm[tri]
    ids[tri] = b_t * (v_t - 0.5 * d_t) * d_t * c_t
    dids_dvov[tri] = b_t * d_t * c_t
    gds[tri] = b_t * ((v_t - d_t) * c_t
                      + (v_t - 0.5 * d_t) * d_t * lam_full[tri])

    region = np.where(vov_raw > 0,
                      np.where(sat, REGION_SATURATION, REGION_TRIODE),
                      REGION_CUTOFF)

    gm = dids_dvov * dvov
    gmb = dids_dvov * dvov * (-dvth_dvbs)

    return {
        "ids": ids, "gm": gm, "gds": gds, "gmb": gmb,
        "vth": vth, "vdsat": vdsat, "vov": vov_raw, "region": region,
    }


def intrinsic_capacitances_batch(
    model: MosModel, w: float, l: float, region: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float, float]:
    """Vectorized :func:`intrinsic_capacitances` over integer region
    codes; elementwise identical to the scalar version (the per-region
    values are sample-independent constants)."""
    c_channel = model.cox * w * l
    cgs_by_region = np.array([
        (2.0 / 3.0) * c_channel + model.cgso * w,
        0.5 * c_channel + model.cgso * w,
        model.cgso * w,
    ])
    cgd_by_region = np.array([
        model.cgdo * w,
        0.5 * c_channel + model.cgdo * w,
        model.cgdo * w,
    ])
    cj_area = model.cj * w * model.ldif
    return cgs_by_region[region], cgd_by_region[region], cj_area, cj_area


def intrinsic_capacitances(
    model: MosModel, w: float, l: float, region: str
) -> tuple[float, float, float, float]:
    """Return ``(cgs, cgd, cdb, csb)`` for the given operating region.

    The Meyer partition is used: in saturation the channel charge is
    assigned 2/3 to the source; in triode it splits evenly; in cutoff only
    overlaps remain.  Junction capacitances are treated as bias-independent
    area capacitances — adequate for the small-signal frequency responses
    this library extracts.
    """
    c_channel = model.cox * w * l
    if region == "saturation":
        cgs = (2.0 / 3.0) * c_channel + model.cgso * w
        cgd = model.cgdo * w
    elif region == "triode":
        cgs = 0.5 * c_channel + model.cgso * w
        cgd = 0.5 * c_channel + model.cgdo * w
    else:  # cutoff
        cgs = model.cgso * w
        cgd = model.cgdo * w
    cj_area = model.cj * w * model.ldif
    return cgs, cgd, cj_area, cj_area
