"""Transient analysis with the backward-Euler method.

Each accepted time step solves the nonlinear circuit with Newton, using the
reactive devices' backward-Euler companion models.  MOS intrinsic
capacitances are attached as *fixed* linear capacitors evaluated at the
initial operating point — sufficient for the large-signal slew/settling
measurements this library performs, where the explicit load and
compensation capacitors dominate.

Backward Euler is unconditionally stable and slightly lossy; step sizes are
chosen by the caller (helpers compute sensible defaults from the requested
stop time).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConvergenceError, ExtractionError, SingularMatrixError
from .dc import ABSTOL_V, GMIN_FINAL, MAX_STEP_V, RELTOL, DCResult, solve_dc
from .devices import Stamper, _voltage
from .netlist import Circuit

_MAX_NEWTON = 60


class TranResult:
    """Waveforms of a transient run."""

    def __init__(self, circuit: Circuit, layout, times: np.ndarray,
                 solutions: np.ndarray):
        self._circuit = circuit
        self._layout = layout
        self.times = times
        self._solutions = solutions  # (n_steps, size)

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of ``node`` over :attr:`times`."""
        index = self._layout.node_index.get(node)
        if index is None:
            from .netlist import is_ground
            if is_ground(node):
                return np.zeros(len(self.times))
            raise KeyError(f"unknown node {node!r}")
        if index < 0:  # ground reference
            return np.zeros(len(self.times))
        return self._solutions[:, index]

    def slew_rate(self, node: str, polarity: int = +1) -> float:
        """Maximum signed slope of the node waveform [V/s].

        ``polarity=+1`` returns the largest rising slope, ``-1`` the largest
        falling slope magnitude.

        Degenerate waveforms (fewer than two points, or duplicate
        timesteps) carry no slope information and raise
        :class:`~repro.errors.ExtractionError` instead of a bare numpy
        ``ValueError`` / division by zero.
        """
        v = self.voltage(node)
        if len(self.times) < 2:
            raise ExtractionError(
                f"slew rate of {node!r} needs at least 2 time points, "
                f"got {len(self.times)}")
        dt = np.diff(self.times)
        if np.any(dt <= 0.0):
            raise ExtractionError(
                f"slew rate of {node!r}: non-increasing timesteps in the "
                f"waveform (duplicate or reordered time points)")
        dv = np.diff(v) / dt
        if polarity >= 0:
            return float(np.max(dv))
        return float(-np.min(dv))


class _MosCapCompanion:
    """Fixed capacitor between two resolved node indices, used to attach MOS
    intrinsic capacitances during transient analysis."""

    def __init__(self, a: int, b: int, capacitance: float):
        self.a = a
        self.b = b
        self.c = capacitance
        self.v = 0.0

    def init(self, x: np.ndarray) -> None:
        self.v = _voltage(x, self.a) - _voltage(x, self.b)

    def stamp(self, st: Stamper, h: float) -> None:
        geq = self.c / h
        st.add_conductance(self.a, self.b, geq)
        st.add_rhs(self.a, geq * self.v)
        st.add_rhs(self.b, -geq * self.v)

    def update(self, x: np.ndarray) -> None:
        self.v = _voltage(x, self.a) - _voltage(x, self.b)


def _newton_step(circuit: Circuit, layout, x0: np.ndarray,
                 states: List[dict], caps: List[_MosCapCompanion],
                 h: float, t: float) -> np.ndarray:
    x = x0.copy()
    for _ in range(_MAX_NEWTON):
        st = Stamper(layout.size)
        for dev, nodes, branches, state in zip(circuit.devices,
                                               layout.device_nodes,
                                               layout.device_branches,
                                               states):
            dev.stamp_tran(st, x, nodes, branches, state, h, t)
        for cap in caps:
            cap.stamp(st, h)
        diag = np.arange(layout.n_nodes)
        st.matrix[diag, diag] += GMIN_FINAL
        try:
            x_new = np.linalg.solve(st.matrix, st.rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular transient matrix at t={t:g}: {exc}") from exc
        delta = x_new - x
        nv = layout.n_nodes
        step = float(np.max(np.abs(delta[:nv]))) if nv else 0.0
        if step > MAX_STEP_V:
            x = x + delta * (MAX_STEP_V / step)
            continue
        x = x_new
        if step <= ABSTOL_V + RELTOL * float(np.max(np.abs(x[:nv]))):
            return x
    raise ConvergenceError(f"transient Newton failed at t={t:g}")


def solve_transient(circuit: Circuit, t_stop: float, dt: float,
                    temp_c: float = 27.0,
                    op: Optional[DCResult] = None) -> TranResult:
    """Integrate the circuit from its DC operating point to ``t_stop``.

    ``dt`` is the fixed backward-Euler step.  Sources with a ``waveform``
    callable follow it; all others hold their DC value.  Pass a pre-solved
    ``op`` to skip the initial DC analysis.
    """
    layout = circuit.layout()
    if op is None:
        op = solve_dc(circuit, temp_c=temp_c)
    x = op.x.copy()

    states: List[dict] = [dict() for _ in circuit.devices]
    for dev, nodes, branches, state in zip(circuit.devices,
                                           layout.device_nodes,
                                           layout.device_branches, states):
        dev.init_state(x, nodes, branches, state)

    caps: List[_MosCapCompanion] = []
    ops = op.operating_points()
    for dev, nodes in zip(circuit.devices, layout.device_nodes):
        record = ops.get(dev.name)
        if record is None or "cgs" not in record:
            continue
        nd, ng, ns, nb = nodes
        if record["swapped"]:
            nd, ns = ns, nd
        for a, b, c in ((ng, ns, record["cgs"]), (ng, nd, record["cgd"]),
                        (nd, nb, record["cdb"]), (ns, nb, record["csb"])):
            companion = _MosCapCompanion(a, b, c)
            companion.init(x)
            caps.append(companion)

    n_steps = max(1, int(round(t_stop / dt)))
    times = np.empty(n_steps + 1)
    solutions = np.empty((n_steps + 1, layout.size))
    times[0] = 0.0
    solutions[0] = x
    for k in range(1, n_steps + 1):
        t = k * dt
        x = _newton_step(circuit, layout, x, states, caps, dt, t)
        for dev, nodes, branches, state in zip(circuit.devices,
                                               layout.device_nodes,
                                               layout.device_branches,
                                               states):
            dev.update_state(x, nodes, branches, state)
        for cap in caps:
            cap.update(x)
        times[k] = t
        solutions[k] = x
    return TranResult(circuit, layout, times, solutions)


def step_waveform(t_step: float, v_before: float, v_after: float,
                  t_rise: float = 0.0) -> Callable[[float], float]:
    """Build a step (optionally with linear rise) source waveform."""
    def waveform(t: float) -> float:
        if t < t_step:
            return v_before
        if t_rise > 0.0 and t < t_step + t_rise:
            return v_before + (v_after - v_before) * (t - t_step) / t_rise
        return v_after
    return waveform


def pulse_waveform(v_low: float, v_high: float, t_delay: float,
                   t_width: float, t_edge: float = 0.0
                   ) -> Callable[[float], float]:
    """Build a single-pulse source waveform with linear edges."""
    def waveform(t: float) -> float:
        if t < t_delay:
            return v_low
        if t_edge > 0.0 and t < t_delay + t_edge:
            return v_low + (v_high - v_low) * (t - t_delay) / t_edge
        if t < t_delay + t_edge + t_width:
            return v_high
        t_fall = t_delay + t_edge + t_width
        if t_edge > 0.0 and t < t_fall + t_edge:
            return v_high + (v_low - v_high) * (t - t_fall) / t_edge
        return v_low
    return waveform
