"""Small-signal noise analysis.

Computes the output noise spectral density of a circuit around its DC
operating point, and the equivalent input-referred density given a
transfer gain.  Device models:

* resistors: thermal noise, ``S_i = 4 k T / R``  [A^2/Hz],
* MOSFETs:  channel thermal noise ``S_i = 4 k T gamma_n gm`` (long-channel
  ``gamma_n = 2/3``) plus flicker noise
  ``S_i = KF gm^2 / (Cox W L f)``  [A^2/Hz].

Method: with the small-signal MNA system ``A(w) x = b``, a noise current
``i_n`` injected between nodes (p, n) produces an output voltage
``v_out = (e_p - e_n)^T A^-1 i_n``.  Solving the single *adjoint* system
``A^T y = e_out`` gives every injection's transfer in one solve per
frequency: ``|y_p - y_n|^2 S_i`` summed over all noise sources.

This is textbook noise analysis on top of the existing
:class:`~repro.circuit.ac.AcSystem`; it exists because input-referred
noise is a standard opamp performance a downstream user of this library
will want to add as a spec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..units import celsius_to_kelvin
from .dc import DCResult
from .devices import Mosfet, Resistor
from .netlist import Circuit

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Long-channel thermal noise factor of the MOS channel.
GAMMA_THERMAL = 2.0 / 3.0

#: Default flicker noise coefficient (KF), V^2*F — a typical magnitude for
#: a 0.35 um-class process.
DEFAULT_KF = 3e-26


@dataclass
class NoiseContribution:
    """Output-referred noise of one device at one frequency."""

    device: str
    kind: str  # "thermal" | "flicker"
    density: float  # V^2/Hz at the output


@dataclass
class NoiseResult:
    """Noise densities over a frequency grid."""

    freqs: np.ndarray
    #: total output noise density per frequency [V^2/Hz]
    output_density: np.ndarray
    #: per-frequency breakdown (same order as freqs)
    contributions: List[List[NoiseContribution]]

    def output_rms(self) -> float:
        """Integrated output noise [Vrms] over the analysis grid
        (trapezoidal in linear frequency)."""
        return math.sqrt(float(np.trapezoid(self.output_density, self.freqs)))

    def dominant_device(self, index: int = 0) -> str:
        """Largest contributor at frequency point ``index``."""
        entries = self.contributions[index]
        return max(entries, key=lambda e: e.density).device


def _noise_sources(circuit: Circuit, op: DCResult, temp_c: float,
                   kf: float) -> List[Tuple[str, str, int, int, float,
                                            float]]:
    """Collect (device, kind, node_p, node_n, white_density,
    flicker_coeff) tuples; densities in A^2/Hz (flicker as coeff/f)."""
    layout = circuit.layout()
    t_kelvin = celsius_to_kelvin(temp_c)
    ops = op.operating_points()
    sources = []
    for dev, nodes in zip(circuit.devices, layout.device_nodes):
        if isinstance(dev, Resistor):
            density = 4.0 * BOLTZMANN * t_kelvin / dev.resistance
            sources.append((dev.name, "thermal", nodes[0], nodes[1],
                            density, 0.0))
        elif isinstance(dev, Mosfet):
            record = ops[dev.name]
            nd, ng, ns, nb = nodes
            if record["swapped"]:
                nd, ns = ns, nd
            gm = record["gm"]
            thermal = 4.0 * BOLTZMANN * t_kelvin * GAMMA_THERMAL * gm
            cox = dev.model.cox
            area = dev.w * dev.m * dev.l
            flicker = kf * gm * gm / (cox * area) if area > 0 else 0.0
            sources.append((dev.name, "thermal", nd, ns, thermal, 0.0))
            if flicker > 0.0:
                sources.append((dev.name, "flicker", nd, ns, 0.0, flicker))
    return sources


def solve_noise(circuit: Circuit, op: DCResult, output: str,
                freqs: Sequence[float], temp_c: float = 27.0,
                kf: float = DEFAULT_KF) -> NoiseResult:
    """Output noise density at ``output`` over ``freqs`` [Hz]."""
    from .ac import AcSystem
    system = AcSystem(circuit, op)
    layout = circuit.layout()
    out_index = system.node_index(output)
    sources = _noise_sources(circuit, op, temp_c, kf)

    freqs = np.asarray(list(freqs), dtype=float)
    total = np.zeros(len(freqs))
    breakdown: List[List[NoiseContribution]] = []
    e_out = np.zeros(layout.size)
    if out_index >= 0:
        e_out[out_index] = 1.0
    for k, freq in enumerate(freqs):
        omega = 2.0 * math.pi * freq
        a_matrix = system._g + 1j * omega * system._b
        y = np.linalg.solve(a_matrix.T, e_out.astype(complex))
        entries: List[NoiseContribution] = []
        for device, kind, p, n, white, flicker in sources:
            yp = y[p] if p >= 0 else 0.0
            yn = y[n] if n >= 0 else 0.0
            transfer = abs(yp - yn) ** 2
            density = white if kind == "thermal" else flicker / max(freq,
                                                                    1e-3)
            value = transfer * density
            total[k] += value
            entries.append(NoiseContribution(device, kind, value))
        breakdown.append(entries)
    return NoiseResult(freqs=freqs, output_density=total,
                       contributions=breakdown)


def input_referred_density(noise: NoiseResult, gain: complex
                           ) -> np.ndarray:
    """Input-referred noise density [V^2/Hz] for a (frequency-flat) gain."""
    magnitude = abs(gain)
    if magnitude <= 0.0:
        raise ValueError("gain must be non-zero to refer noise to input")
    return noise.output_density / (magnitude ** 2)
