"""DC sweep analysis.

Steps the DC value of an independent source (or the temperature) across a
grid and records node voltages and device currents, warm-starting each
Newton solve from the previous point — the standard way to trace transfer
curves, bias curves and operating-region boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import NetlistError
from .dc import DCResult, solve_dc
from .devices import Isource, Vsource
from .netlist import Circuit


class SweepResult:
    """Result of a DC sweep: one operating point per grid value."""

    def __init__(self, values: np.ndarray, results: List[DCResult]):
        self.values = values
        self.results = results

    def voltage(self, node: str) -> np.ndarray:
        """Node voltage across the sweep."""
        return np.array([r.voltage(node) for r in self.results])

    def device_current(self, device: str) -> np.ndarray:
        """Drain/branch current of a device across the sweep."""
        currents = []
        for result in self.results:
            record = result.operating_points().get(device)
            if record is None:
                currents.append(result.source_current(device))
            elif "ids" in record:
                currents.append(record["ids"])
            else:
                currents.append(record["i"])
        return np.array(currents)

    def region_changes(self, device: str) -> List[tuple]:
        """Sweep values where a MOSFET's operating region changes."""
        changes = []
        previous: Optional[str] = None
        for value, result in zip(self.values, self.results):
            region = result.op(device)["region"]
            if previous is not None and region != previous:
                changes.append((float(value), previous, region))
            previous = region
        return changes

    def __len__(self) -> int:
        return len(self.results)


def dc_sweep(circuit: Circuit, source: str, values: Sequence[float],
             temp_c: float = 27.0) -> SweepResult:
    """Sweep the DC value of the named V/I source over ``values``.

    The source's original value is restored afterwards.  Each point is
    warm-started from its predecessor for speed and hysteresis-free
    convergence.
    """
    device = circuit.device(source)
    if not isinstance(device, (Vsource, Isource)):
        raise NetlistError(
            f"{source!r} is not an independent source; cannot sweep it")
    original = device.dc
    results: List[DCResult] = []
    x0 = None
    try:
        for value in values:
            device.dc = float(value)
            result = solve_dc(circuit, temp_c=temp_c, x0=x0)
            x0 = result.x
            results.append(result)
    finally:
        device.dc = original
    return SweepResult(np.asarray(list(values), dtype=float), results)


def temperature_sweep(circuit: Circuit, temps_c: Sequence[float]
                      ) -> SweepResult:
    """Solve the DC operating point across a temperature grid."""
    results: List[DCResult] = []
    x0 = None
    for temp in temps_c:
        result = solve_dc(circuit, temp_c=float(temp), x0=x0)
        x0 = result.x
        results.append(result)
    return SweepResult(np.asarray(list(temps_c), dtype=float), results)
