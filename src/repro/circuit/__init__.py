"""From-scratch analog circuit simulator (MNA).

This subpackage is the simulation substrate of the reproduction: a dense
modified-nodal-analysis engine with

* a device library (R, C, L, independent and controlled sources, MOSFET),
* a smooth SPICE level-1 MOS model with analytic derivatives
  (:mod:`repro.circuit.mos`),
* a robust DC Newton solver with gmin/source stepping
  (:mod:`repro.circuit.dc`),
* small-signal AC analysis and transfer-function utilities
  (:mod:`repro.circuit.ac`),
* backward-Euler transient analysis (:mod:`repro.circuit.transient`),
* a SPICE-style netlist parser (:mod:`repro.circuit.parser`).
"""

from .ac import (ACResult, AcSystem, log_sweep, phase_margin,
                 shared_matrix_transfers, solve_ac, transfer_at,
                 unity_gain_frequency)
from .dc import DCResult, WarmStartCache, solve_dc
from .devices import (Capacitor, Device, Inductor, Isource, Mosfet, Resistor,
                      Stamper, Vcvs, Vccs, Vsource)
from .mos import MosEval, MosModel, evaluate_nmos, intrinsic_capacitances
from .netlist import Circuit, MnaLayout, is_ground
from .noise import (NoiseContribution, NoiseResult, input_referred_density,
                    solve_noise)
from .parser import NetlistParser, parse_netlist
from .sweep import SweepResult, dc_sweep, temperature_sweep
from .transient import (TranResult, pulse_waveform, solve_transient,
                        step_waveform)
from .writer import write_netlist

__all__ = [
    "ACResult", "AcSystem", "Capacitor", "Circuit", "DCResult", "Device",
    "Inductor", "WarmStartCache", "shared_matrix_transfers",
    "Isource", "MnaLayout", "MosEval", "MosModel", "Mosfet", "NetlistParser",
    "Resistor", "Stamper", "TranResult", "Vcvs", "Vccs", "Vsource",
    "evaluate_nmos", "intrinsic_capacitances", "is_ground", "log_sweep",
    "NoiseContribution", "NoiseResult", "input_referred_density",
    "parse_netlist", "phase_margin", "pulse_waveform", "solve_ac", "solve_dc",
    "SweepResult", "dc_sweep", "solve_noise", "solve_transient",
    "step_waveform", "temperature_sweep", "transfer_at",
    "unity_gain_frequency", "write_netlist",
]
