"""SPICE-style netlist writer — the inverse of :mod:`repro.circuit.parser`.

Serializes a :class:`~repro.circuit.netlist.Circuit` back to text that the
bundled parser accepts (round-trip property: parse(write(c)) solves to the
same DC operating point).  Useful for exporting generated benchmark
circuits to external SPICE-class simulators and for debugging testbenches.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import NetlistError
from .devices import (Capacitor, Inductor, Isource, Mosfet, Resistor, Vcvs,
                      Vccs, Vsource)
from .mos import MosModel
from .netlist import Circuit


def _format_number(value: float) -> str:
    """Numeric formatting with exact float round-trip fidelity."""
    return f"{value:.17g}"


def _model_card(model: MosModel) -> str:
    mtype = "nmos" if model.polarity > 0 else "pmos"
    params = (f"vto={_format_number(model.vto)} "
              f"kp={_format_number(model.kp)} "
              f"lambda={_format_number(model.lambda_)} "
              f"gamma={_format_number(model.gamma)} "
              f"phi={_format_number(model.phi)} "
              f"tox={_format_number(model.tox)} "
              f"cgso={_format_number(model.cgso)} "
              f"cgdo={_format_number(model.cgdo)} "
              f"cj={_format_number(model.cj)} "
              f"tcv={_format_number(model.tcv)} "
              f"bex={_format_number(model.bex)}")
    return f".model {model.name} {mtype} ({params})"


def write_netlist(circuit: Circuit) -> str:
    """Serialize ``circuit`` to SPICE-style text.

    Models referenced by MOSFETs are emitted as ``.model`` cards (one per
    distinct model name).  Statistical perturbations on a transistor
    (``delta_vto`` / ``beta_factor``) are baked into a per-instance model
    card so the exported netlist reproduces the perturbed circuit exactly.
    """
    lines: List[str] = [circuit.title or "* untitled"]
    models: Dict[str, MosModel] = {}
    element_lines: List[str] = []
    for dev in circuit.devices:
        if isinstance(dev, Resistor):
            element_lines.append(
                f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} "
                f"{_format_number(dev.resistance)}")
        elif isinstance(dev, Capacitor):
            element_lines.append(
                f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} "
                f"{_format_number(dev.capacitance)}")
        elif isinstance(dev, Inductor):
            element_lines.append(
                f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} "
                f"{_format_number(dev.inductance)}")
        elif isinstance(dev, Vsource):
            element_lines.append(
                f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} "
                f"DC {_format_number(dev.dc)} "
                f"AC {_format_number(abs(dev.ac))}")
        elif isinstance(dev, Isource):
            element_lines.append(
                f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} "
                f"DC {_format_number(dev.dc)} "
                f"AC {_format_number(abs(dev.ac))}")
        elif isinstance(dev, Vcvs):
            element_lines.append(
                f"{dev.name} {' '.join(dev.nodes)} "
                f"{_format_number(dev.gain)}")
        elif isinstance(dev, Vccs):
            element_lines.append(
                f"{dev.name} {' '.join(dev.nodes)} "
                f"{_format_number(dev.gm)}")
        elif isinstance(dev, Mosfet):
            model = dev.model.at_temperature(27.0).perturbed(
                dev.delta_vto, dev.beta_factor)
            if dev.delta_vto != 0.0 or dev.beta_factor != 1.0:
                # Bake the statistical perturbation into an instance model.
                import dataclasses
                model = dataclasses.replace(
                    model, name=f"{model.name}_{dev.name.lower()}")
            models.setdefault(model.name, model)
            element_lines.append(
                f"{dev.name} {' '.join(dev.nodes)} {model.name} "
                f"W={_format_number(dev.w)} L={_format_number(dev.l)} "
                f"M={dev.m}")
        else:
            raise NetlistError(
                f"cannot serialize device type {type(dev).__name__} "
                f"({dev.name})")
    lines.extend(_model_card(m) for m in models.values())
    lines.extend(element_lines)
    lines.append(".end")
    return "\n".join(lines) + "\n"
