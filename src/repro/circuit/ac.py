"""Small-signal AC analysis.

The circuit is linearized around a previously solved DC operating point
(:class:`repro.circuit.dc.DCResult`).  Because every small-signal element
is either frequency-independent (conductances, controlled sources) or
scales linearly with ``j*omega`` (capacitances, inductances), the system
factors as

    (G + j*omega*B) x = rhs

with ``G``, ``B`` and ``rhs`` assembled **once** per operating point
(:class:`AcSystem`); each frequency point is then a single dense solve.
This matters: the transit-frequency bisection and the phase-margin sweep
evaluate dozens of frequencies per measurement.

Helpers locate unity-gain crossings and phase margins on a transfer
function, which the evaluation layer turns into opamp performances.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ExtractionError, SingularMatrixError
from .dc import DCResult
from .devices import Stamper
from .netlist import Circuit, is_ground


class AcSystem:
    """Assembled small-signal system ``(G + j*omega*B) x = rhs``.

    Rebuild (cheap) after changing any source's ``ac`` value — the sources
    are baked into ``rhs``.
    """

    def __init__(self, circuit: Circuit, op: DCResult):
        self._circuit = circuit
        layout = circuit.layout()
        self._layout = layout
        ops = op.operating_points()
        st_g = Stamper(layout.size, dtype=complex)
        st_b = Stamper(layout.size, dtype=complex)
        for dev, nodes, branches in zip(circuit.devices,
                                        layout.device_nodes,
                                        layout.device_branches):
            dev.stamp_ac_parts(st_g, st_b, nodes, branches,
                               ops.get(dev.name))
        diag = np.arange(layout.n_nodes)
        st_g.matrix[diag, diag] += 1e-12
        self._g = st_g.matrix
        self._b = st_b.matrix
        self._rhs = st_g.rhs + st_b.rhs

    def solve(self, freq: float) -> np.ndarray:
        """Solve for the full phasor vector at ``freq`` [Hz]."""
        omega = 2.0 * math.pi * freq
        try:
            return np.linalg.solve(self._g + 1j * omega * self._b,
                                   self._rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular AC matrix at f={freq:g} Hz in circuit "
                f"{self._circuit.title!r}: {exc}") from exc

    def node_index(self, node: str) -> int:
        index = self._layout.node_index.get(node)
        if index is None:
            if is_ground(node):
                return -1
            raise KeyError(f"unknown node {node!r}")
        return index

    def transfer(self, node: str, freq: float) -> complex:
        """Phasor of ``node`` at one frequency."""
        index = self.node_index(node)
        if index < 0:
            return 0.0 + 0.0j
        return complex(self.solve(freq)[index])


class ACResult:
    """Complex node phasors over a frequency grid."""

    def __init__(self, system: AcSystem, freqs: np.ndarray,
                 solutions: np.ndarray):
        self._system = system
        self.freqs = freqs
        self._solutions = solutions  # shape (n_freq, size)

    def voltage(self, node: str) -> np.ndarray:
        """Complex phasor of ``node`` at every frequency point."""
        index = self._system.node_index(node)
        if index < 0:
            return np.zeros(len(self.freqs), dtype=complex)
        return self._solutions[:, index]

    def transfer(self, node: str) -> np.ndarray:
        """Alias of :meth:`voltage`; with a unit AC source the node phasor
        *is* the transfer function."""
        return self.voltage(node)


def solve_ac(circuit: Circuit, op: DCResult,
             freqs: Sequence[float]) -> ACResult:
    """Run an AC analysis at the given frequencies (Hz)."""
    system = AcSystem(circuit, op)
    freqs = np.asarray(list(freqs), dtype=float)
    solutions = np.empty((len(freqs), system._g.shape[0]), dtype=complex)
    for k, freq in enumerate(freqs):
        solutions[k] = system.solve(freq)
    return ACResult(system, freqs, solutions)


def log_sweep(f_start: float, f_stop: float, points_per_decade: int = 10
              ) -> np.ndarray:
    """Logarithmically spaced frequency grid, inclusive of both ends."""
    if f_start <= 0 or f_stop <= f_start:
        raise ExtractionError(
            f"invalid sweep range [{f_start:g}, {f_stop:g}]")
    decades = math.log10(f_stop / f_start)
    n = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(math.log10(f_start), math.log10(f_stop), n)


def transfer_at(circuit: Circuit, op: DCResult, node: str,
                freq: float) -> complex:
    """Single-frequency transfer-function evaluation (one-shot API; build
    an :class:`AcSystem` directly when evaluating many frequencies)."""
    return AcSystem(circuit, op).transfer(node, freq)


def unity_gain_frequency(system: AcSystem, node: str,
                         f_lo: float = 1.0, f_hi: float = 1e12,
                         tol: float = 1e-8) -> float:
    """Locate the unity-gain crossing |H(f)| = 1 by bisection on log f.

    Requires |H(f_lo)| > 1 > |H(f_hi)|; raises :class:`ExtractionError`
    otherwise (e.g. a dead circuit whose gain never exceeds one).
    """
    g_lo = abs(system.transfer(node, f_lo))
    if g_lo <= 1.0:
        raise ExtractionError(
            f"gain at {f_lo:g} Hz is {g_lo:.3g} <= 1; no transit frequency")
    g_hi = abs(system.transfer(node, f_hi))
    if g_hi >= 1.0:
        raise ExtractionError(
            f"gain at {f_hi:g} Hz is {g_hi:.3g} >= 1; sweep range too small")
    lo, hi = math.log10(f_lo), math.log10(f_hi)
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if abs(system.transfer(node, 10.0 ** mid)) > 1.0:
            lo = mid
        else:
            hi = mid
    return 10.0 ** (0.5 * (lo + hi))


def phase_margin(system: AcSystem, node: str,
                 f_unity: Optional[float] = None) -> float:
    """Phase margin in degrees: ``180 + phase(H(f_t))``.

    ``f_unity`` may be supplied to reuse an already located transit
    frequency.  The phase is unwrapped from DC so multi-pole phase
    accumulation beyond -180 degrees is handled correctly.
    """
    if f_unity is None:
        f_unity = unity_gain_frequency(system, node)
    # Unwrap the phase from well below the first pole up to f_t.
    freqs = log_sweep(max(f_unity * 1e-6, 0.1), f_unity, points_per_decade=8)
    h = np.array([system.transfer(node, f) for f in freqs])
    phases = np.unwrap(np.angle(h))
    # Reference the unwrapped phase so DC phase maps to 0 (or 180 for an
    # inverting path).
    p0 = phases[0]
    if abs(math.remainder(p0, 2 * math.pi)) > math.pi / 2:
        phases = phases - math.pi * round(p0 / math.pi)
    else:
        phases = phases - 2 * math.pi * round(p0 / (2 * math.pi))
    return math.degrees(phases[-1]) + 180.0
