"""Small-signal AC analysis.

The circuit is linearized around a previously solved DC operating point
(:class:`repro.circuit.dc.DCResult`).  Because every small-signal element
is either frequency-independent (conductances, controlled sources) or
scales linearly with ``j*omega`` (capacitances, inductances), the system
factors as

    (G + j*omega*B) x = rhs

with ``G``, ``B`` and ``rhs`` assembled **once** per operating point
(:class:`AcSystem`); each frequency point is then a single dense solve.
This matters: the transit-frequency search and the phase-margin sweep
evaluate dozens of frequencies per measurement, so frequency batches are
stacked into one ``(F, n, n)`` array and dispatched as a **single
broadcast** ``np.linalg.solve`` (:meth:`AcSystem.solve_many`).  The
gufunc runs the same LAPACK routine per slice, so batched solutions are
bitwise identical to one-at-a-time solves.

Helpers locate unity-gain crossings and phase margins on a transfer
function, which the evaluation layer turns into opamp performances.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ExtractionError
from .dc import DCResult
from .devices import Stamper
from .linsolve import resolve_backend
from .netlist import Circuit, is_ground


class AcSystem:
    """Assembled small-signal system ``(G + j*omega*B) x = rhs``.

    Rebuild (cheap) after changing any source's ``ac`` value — the sources
    are baked into ``rhs``.

    The linear algebra is delegated to a backend engine
    (:mod:`repro.circuit.linsolve`): dense LAPACK below the auto node
    threshold (bit-identical to the historic code), pattern-cached
    ``splu`` above it.  ``freq = 0`` is solved as the real-valued ``G``
    system on both engines — at ``omega = 0`` the ``B`` stack drops out
    exactly, so a complex solve would only add a structurally-zero
    imaginary half.
    """

    def __init__(self, circuit: Circuit, op: DCResult, backend=None):
        self._circuit = circuit
        layout = circuit.layout()
        self._layout = layout
        self._backend = resolve_backend(backend, layout.n_nodes)
        self._engine = self._backend.ac_engine(circuit, layout,
                                               op.operating_points())
        self._rhs = self._engine.rhs

    @property
    def backend_name(self) -> str:
        return self._backend.name

    # Dense matrix views for consumers that need raw ``(G, B)`` (e.g.
    # the noise solver's adjoint transpose solve).
    @property
    def _g(self) -> np.ndarray:
        return self._engine.dense_g()

    @property
    def _b(self) -> np.ndarray:
        return self._engine.dense_b()

    def with_drives(self) -> "AcSystem":
        """Cheap rebuild after changing source ``ac`` drives.

        The stamped ``(G, B)`` matrices do not depend on any source's
        ``ac`` value, so a re-drive shares them and restamps only the rhs
        (sources are the only rhs contributors).  The result is bitwise
        identical to a full ``AcSystem(circuit, op)`` rebuild at a
        fraction of the stamping cost — and on the sparse engine shares
        factorizations with its parent, so solving a re-driven system at
        an already-factored frequency is pure back-substitution.
        """
        from .devices import Isource, Vsource
        layout = self._layout
        st = Stamper(layout.size, dtype=complex)
        zeros = np.zeros(layout.size, dtype=complex)
        for dev, nodes, branches in zip(self._circuit.devices,
                                        layout.device_nodes,
                                        layout.device_branches):
            if isinstance(dev, (Vsource, Isource)):
                dev.stamp_ac_parts(st, st, nodes, branches, None)
        clone = object.__new__(AcSystem)
        clone._circuit = self._circuit
        clone._layout = layout
        clone._backend = self._backend
        clone._engine = self._engine.with_rhs(st.rhs + zeros)
        clone._rhs = clone._engine.rhs
        return clone

    def solve(self, freq: float) -> np.ndarray:
        """Solve for the full phasor vector at ``freq`` [Hz]."""
        return self._engine.solve(2.0 * math.pi * freq)

    def solve_many(self, freqs: Sequence[float]) -> np.ndarray:
        """Phasor vectors at every frequency in ``freqs``, shape
        ``(F, size)``.

        The dense engine stacks the per-frequency systems into one
        ``(F, n, n)`` array and runs a single broadcast
        :func:`np.linalg.solve` (each slice bitwise identical to
        :meth:`solve` at that frequency); the sparse engine re-factors
        per frequency on the shared symbolic pattern.
        """
        omega = 2.0 * np.pi * np.asarray(freqs, dtype=float)
        return self._engine.solve_many(omega)

    def node_index(self, node: str) -> int:
        index = self._layout.node_index.get(node)
        if index is None:
            if is_ground(node):
                return -1
            raise KeyError(f"unknown node {node!r}")
        return index

    def transfer(self, node: str, freq: float) -> complex:
        """Phasor of ``node`` at one frequency."""
        index = self.node_index(node)
        if index < 0:
            return 0.0 + 0.0j
        return complex(self.solve(freq)[index])

    def transfer_many(self, node: str, freqs: Sequence[float]
                      ) -> np.ndarray:
        """Phasor of ``node`` at every frequency (one batched solve)."""
        index = self.node_index(node)
        n = len(np.asarray(freqs, dtype=float))
        if index < 0:
            return np.zeros(n, dtype=complex)
        return self.solve_many(freqs)[:, index]


class ACResult:
    """Complex node phasors over a frequency grid."""

    def __init__(self, system: AcSystem, freqs: np.ndarray,
                 solutions: np.ndarray):
        self._system = system
        self.freqs = freqs
        self._solutions = solutions  # shape (n_freq, size)

    def voltage(self, node: str) -> np.ndarray:
        """Complex phasor of ``node`` at every frequency point."""
        index = self._system.node_index(node)
        if index < 0:
            return np.zeros(len(self.freqs), dtype=complex)
        return self._solutions[:, index]

    def transfer(self, node: str) -> np.ndarray:
        """Alias of :meth:`voltage`; with a unit AC source the node phasor
        *is* the transfer function."""
        return self.voltage(node)


def solve_ac(circuit: Circuit, op: DCResult,
             freqs: Sequence[float], backend=None) -> ACResult:
    """Run an AC analysis at the given frequencies (Hz)."""
    system = AcSystem(circuit, op, backend=backend)
    freqs = np.asarray(list(freqs), dtype=float)
    solutions = system.solve_many(freqs)
    return ACResult(system, freqs, solutions)


def log_sweep(f_start: float, f_stop: float, points_per_decade: int = 10
              ) -> np.ndarray:
    """Logarithmically spaced frequency grid, inclusive of both ends."""
    if f_start <= 0 or f_stop <= f_start:
        raise ExtractionError(
            f"invalid sweep range [{f_start:g}, {f_stop:g}]")
    decades = math.log10(f_stop / f_start)
    n = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(math.log10(f_start), math.log10(f_stop), n)


def transfer_at(circuit: Circuit, op: DCResult, node: str,
                freq: float, backend=None) -> complex:
    """Single-frequency transfer-function evaluation (one-shot API; build
    an :class:`AcSystem` directly when evaluating many frequencies)."""
    return AcSystem(circuit, op, backend=backend).transfer(node, freq)


def shared_matrix_transfers(systems: Sequence[AcSystem], node: str,
                            freq: float) -> list:
    """Transfers of several systems that share ``(G, B)`` but differ in
    their source drives (rhs) — e.g. the differential and common-mode
    benches of one operating point — via a single multi-rhs solve.

    LAPACK factorizes the matrix once and back-substitutes per column, so
    each value is bitwise identical to ``system.transfer(node, freq)``.
    Falls back to individual solves when the matrices actually differ.
    """
    first = systems[0]
    if len(systems) == 1 or not all(
            first._engine.same_matrix(s._engine) for s in systems[1:]):
        return [s.transfer(node, freq) for s in systems]
    index = first.node_index(node)
    if index < 0:
        return [0.0 + 0.0j] * len(systems)
    omega = 2.0 * math.pi * freq
    rhs = np.stack([s._rhs for s in systems], axis=1)
    x = first._engine.multi_rhs(omega, rhs, f"at f={freq:g} Hz")
    return [complex(x[index, k]) for k in range(len(systems))]


#: Interior points per refinement round of the unity-gain search.  Each
#: round shrinks the bracket by ``SECTION_POINTS + 1``x with *one* batched
#: solve.  The stacked solve's cost is nearly proportional to the *total*
#: point count (the per-round overhead is tiny), so the sweet spot
#: minimizes ``P / log(P + 1)``: measured on the folded-cascode bench,
#: ``P = 4`` (~13 rounds, 52 stacked solves) beats both classic bisection
#: (``SECTION_POINTS = 1``, kept as the benchmark's legacy mode, ~31
#: one-at-a-time solves) and wider sections.
SECTION_POINTS = 4


def unity_gain_frequency(system: AcSystem, node: str,
                         f_lo: float = 1.0, f_hi: float = 1e12,
                         tol: float = 1e-8,
                         section_points: Optional[int] = None) -> float:
    """Locate the unity-gain crossing |H(f)| = 1 on log f.

    Multi-section refinement: each round evaluates ``section_points``
    interior frequencies with one batched solve and re-brackets around the
    first crossing from above.  With ``section_points = 1`` this reduces
    exactly to classic bisection (same bracket updates, same result).

    Requires |H(f_lo)| > 1 > |H(f_hi)|; raises :class:`ExtractionError`
    otherwise (e.g. a dead circuit whose gain never exceeds one).
    """
    if section_points is None:
        section_points = SECTION_POINTS
    g_lo = abs(system.transfer(node, f_lo))
    if g_lo <= 1.0:
        raise ExtractionError(
            f"gain at {f_lo:g} Hz is {g_lo:.3g} <= 1; no transit frequency")
    g_hi = abs(system.transfer(node, f_hi))
    if g_hi >= 1.0:
        raise ExtractionError(
            f"gain at {f_hi:g} Hz is {g_hi:.3g} >= 1; sweep range too small")
    lo, hi = math.log10(f_lo), math.log10(f_hi)
    while hi - lo > tol:
        grid = np.linspace(lo, hi, section_points + 2)[1:-1]
        mags = np.abs(system.transfer_many(node, 10.0 ** grid))
        below = np.nonzero(mags <= 1.0)[0]
        if below.size == 0:
            lo = float(grid[-1])
        else:
            j = int(below[0])
            hi = float(grid[j])
            if j > 0:
                lo = float(grid[j - 1])
    return 10.0 ** (0.5 * (lo + hi))


def refine_unity_crossing(system: AcSystem, node: str,
                          f_lo: float, f_hi: float,
                          g_lo: float, g_hi: float,
                          tol: float) -> float:
    """Illinois (modified false-position) refinement of the unity-gain
    crossing inside a verified bracket ``|H(f_lo)| = g_lo > 1 > g_hi =
    |H(f_hi)|``.

    Works on ``(log10 f, log10 |H|)``, where a single-pole roll-off is
    exactly linear — so the secant step typically lands within ``tol`` of
    the crossing in 3-5 solves, against the ~30 solves of the sectioned
    bracket sweep over the same span.  The Illinois side-halving keeps a
    stale endpoint from pinning the iterate, guaranteeing the bracket
    shrinks below ``tol`` even on pathological gain curves.  Used by the
    warm transit-frequency path, where the bracket is already tight
    (``ft_hint / 2`` .. ``2 * ft_hint``); the cold path keeps the batched
    section sweep of :func:`unity_gain_frequency`.
    """
    lo, hi = math.log10(f_lo), math.log10(f_hi)
    y_lo, y_hi = math.log10(g_lo), math.log10(g_hi)
    side = 0
    for _ in range(80):
        if hi - lo <= tol:
            break
        u = (lo * y_hi - hi * y_lo) / (y_hi - y_lo)
        if not lo < u < hi:
            u = 0.5 * (lo + hi)
        g = abs(system.transfer(node, 10.0 ** u))
        if g <= 0.0:
            raise ExtractionError(
                f"zero gain at {10.0 ** u:g} Hz inside the unity bracket")
        y = math.log10(g)
        if y > 0.0:
            lo, y_lo = u, y
            if side == -1:
                y_hi *= 0.5
            side = -1
        elif y < 0.0:
            hi, y_hi = u, y
            if side == 1:
                y_lo *= 0.5
            side = 1
        else:
            return 10.0 ** u
    return 10.0 ** (0.5 * (lo + hi))


def warm_unity_crossing(system: AcSystem, node: str,
                        f_lo: float, f_hi: float,
                        tol: float = 1e-8) -> float:
    """Unity-gain crossing on a *hinted* bracket ``[f_lo, f_hi]``.

    Verifies the bracket with two endpoint solves — raising
    :class:`ExtractionError` with the same precondition semantics as
    :func:`unity_gain_frequency` when the crossing moved outside it —
    then hands off to the fast :func:`refine_unity_crossing` secant
    search.  Both the serial and the sample-batched measurement paths
    call this same function, so their warm transit frequencies agree
    bitwise.
    """
    g_lo = abs(system.transfer(node, f_lo))
    if g_lo <= 1.0:
        raise ExtractionError(
            f"gain at {f_lo:g} Hz is {g_lo:.3g} <= 1; no transit frequency")
    g_hi = abs(system.transfer(node, f_hi))
    if g_hi >= 1.0:
        raise ExtractionError(
            f"gain at {f_hi:g} Hz is {g_hi:.3g} >= 1; sweep range too small")
    return refine_unity_crossing(system, node, f_lo, f_hi, g_lo, g_hi, tol)


def phase_margin(system: AcSystem, node: str,
                 f_unity: Optional[float] = None) -> float:
    """Phase margin in degrees: ``180 + phase(H(f_t))``.

    ``f_unity`` may be supplied to reuse an already located transit
    frequency.  The phase is unwrapped from DC so multi-pole phase
    accumulation beyond -180 degrees is handled correctly.
    """
    if f_unity is None:
        f_unity = unity_gain_frequency(system, node)
    # Unwrap the phase from well below the first pole up to f_t.
    freqs = log_sweep(max(f_unity * 1e-6, 0.1), f_unity, points_per_decade=8)
    h = system.transfer_many(node, freqs)
    phases = np.unwrap(np.angle(h))
    # Reference the unwrapped phase so DC phase maps to 0 (or 180 for an
    # inverting path).
    p0 = phases[0]
    if abs(math.remainder(p0, 2 * math.pi)) > math.pi / 2:
        phases = phases - math.pi * round(p0 / math.pi)
    else:
        phases = phases - 2 * math.pi * round(p0 / (2 * math.pi))
    return math.degrees(phases[-1]) + 180.0
