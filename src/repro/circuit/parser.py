"""SPICE-style netlist parser.

Supports the subset of SPICE syntax needed to describe the circuits in this
package and to let users bring their own netlists:

* comment lines (``*``), end-of-line comments (``;``), ``+`` continuations,
* element cards: ``R``, ``C``, ``L``, ``V``, ``I``, ``E`` (VCVS), ``G``
  (VCCS), ``M`` (MOSFET with ``W=``/``L=``/``M=`` parameters),
* ``.model <name> nmos|pmos (param=value ...)`` cards with SPICE level-1
  parameter names,
* ``.end`` terminator (optional), everything case-insensitive,
* SI magnitude suffixes on all numbers (``10u``, ``4.7k``, ``1meg``).

The first line is treated as the title, as in SPICE, unless it starts with
a recognized card.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ParseError
from ..units import parse_value
from .mos import MosModel
from .netlist import Circuit

#: .model parameter name -> MosModel field and converter.
_MODEL_FIELDS = {
    "vto": "vto",
    "kp": "kp",
    "lambda": "lambda_",
    "gamma": "gamma",
    "phi": "phi",
    "tox": "tox",
    "cgso": "cgso",
    "cgdo": "cgdo",
    "cj": "cj",
    "tcv": "tcv",
    "bex": "bex",
}

def _looks_like_card(line: str) -> bool:
    """Heuristic for "is the first netlist line a card rather than a title".

    Dot cards always count; element cards need a leading element letter AND
    at least name + two nodes + a value (4 tokens), so short prose titles
    like ``"my title"`` are not misread.  Ambiguous titles should be passed
    explicitly via the ``title`` parameter.
    """
    stripped = line.strip()
    if stripped.startswith("."):
        return True
    tokens = stripped.split()
    return bool(tokens) and tokens[0][0].lower() in "rclviegm" \
        and len(tokens) >= 4


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    """Join ``+`` continuations; returns (line_number, text) pairs."""
    logical: List[Tuple[int, str]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.lstrip().startswith("*"):
            continue
        if line.lstrip().startswith("+"):
            if not logical:
                raise ParseError("continuation line with nothing to continue",
                                 number)
            prev_number, prev = logical[-1]
            logical[-1] = (prev_number, prev + " " + line.lstrip()[1:])
        else:
            logical.append((number, line.strip()))
    return logical


def _split_params(tokens: List[str]) -> Tuple[List[str], Dict[str, str]]:
    """Separate positional tokens from ``name=value`` parameters."""
    positional: List[str] = []
    params: Dict[str, str] = {}
    for token in tokens:
        if "=" in token:
            key, _, value = token.partition("=")
            params[key.lower()] = value
        else:
            positional.append(token)
    return positional, params


class NetlistParser:
    """Stateful parser; use :func:`parse_netlist` for the one-shot API."""

    def __init__(self) -> None:
        self.models: Dict[str, MosModel] = {}

    def parse(self, text: str, title: Optional[str] = None) -> Circuit:
        lines = _logical_lines(text)
        if not lines:
            raise ParseError("empty netlist")
        start = 0
        if title is None:
            if _looks_like_card(lines[0][1]):
                title = ""
            else:
                title = lines[0][1]
                start = 1
        circuit = Circuit(title)
        # First pass: model cards, so element order does not matter.
        element_lines: List[Tuple[int, str]] = []
        for number, line in lines[start:]:
            lowered = line.lower()
            if lowered.startswith(".model"):
                self._parse_model(line, number)
            elif lowered.startswith(".end"):
                break
            elif lowered.startswith("."):
                raise ParseError(f"unsupported card {line.split()[0]!r}",
                                 number)
            else:
                element_lines.append((number, line))
        for number, line in element_lines:
            self._parse_element(circuit, line, number)
        return circuit

    # -- card handlers ---------------------------------------------------
    def _parse_model(self, line: str, number: int) -> None:
        body = re.sub(r"[()]", " ", line)
        tokens = body.split()
        if len(tokens) < 3:
            raise ParseError(".model needs a name and a type", number)
        _, name, mtype = tokens[:3]
        mtype = mtype.lower()
        if mtype not in ("nmos", "pmos"):
            raise ParseError(f"unsupported model type {mtype!r}", number)
        polarity = 1 if mtype == "nmos" else -1
        _, params = _split_params(tokens[3:])
        kwargs = {"name": name.lower(), "polarity": polarity,
                  "vto": 0.5 * polarity, "kp": 100e-6, "lambda_": 0.05}
        for key, value in params.items():
            field = _MODEL_FIELDS.get(key)
            if field is None:
                raise ParseError(f"unknown model parameter {key!r}", number)
            try:
                kwargs[field] = parse_value(value)
            except Exception as exc:
                raise ParseError(f"bad value for {key!r}: {exc}", number)
        self.models[name.lower()] = MosModel(**kwargs)

    def _value(self, token: str, number: int) -> float:
        try:
            return parse_value(token)
        except Exception as exc:
            raise ParseError(str(exc), number)

    def _parse_element(self, circuit: Circuit, line: str,
                       number: int) -> None:
        tokens = line.split()
        name = tokens[0]
        kind = name[0].lower()
        positional, params = _split_params(tokens[1:])
        try:
            if kind == "r":
                circuit.resistor(name, positional[0], positional[1],
                                 self._value(positional[2], number))
            elif kind == "c":
                circuit.capacitor(name, positional[0], positional[1],
                                  self._value(positional[2], number))
            elif kind == "l":
                circuit.inductor(name, positional[0], positional[1],
                                 self._value(positional[2], number))
            elif kind in ("v", "i"):
                dc = 0.0
                ac = 0.0
                rest = positional[2:]
                k = 0
                while k < len(rest):
                    token = rest[k].lower()
                    if token == "dc":
                        k += 1
                        dc = self._value(rest[k], number)
                    elif token == "ac":
                        k += 1
                        ac = self._value(rest[k], number)
                    else:
                        dc = self._value(rest[k], number)
                    k += 1
                if "dc" in params:
                    dc = self._value(params["dc"], number)
                if "ac" in params:
                    ac = self._value(params["ac"], number)
                if kind == "v":
                    circuit.vsource(name, positional[0], positional[1],
                                    dc=dc, ac=ac)
                else:
                    circuit.isource(name, positional[0], positional[1],
                                    dc=dc, ac=ac)
            elif kind == "e":
                circuit.vcvs(name, positional[0], positional[1],
                             positional[2], positional[3],
                             self._value(positional[4], number))
            elif kind == "g":
                circuit.vccs(name, positional[0], positional[1],
                             positional[2], positional[3],
                             self._value(positional[4], number))
            elif kind == "m":
                model_name = positional[4].lower()
                model = self.models.get(model_name)
                if model is None:
                    raise ParseError(f"unknown model {positional[4]!r}",
                                     number)
                w = self._value(params.get("w", "10u"), number)
                l = self._value(params.get("l", "1u"), number)
                m = int(self._value(params.get("m", "1"), number))
                circuit.mosfet(name, positional[0], positional[1],
                               positional[2], positional[3], model,
                               w=w, l=l, m=m)
            else:
                raise ParseError(f"unsupported element {name!r}", number)
        except IndexError:
            raise ParseError(f"too few terminals/values for {name!r}",
                             number) from None


def parse_netlist(text: str, title: Optional[str] = None) -> Circuit:
    """Parse a SPICE-style netlist string into a :class:`Circuit`."""
    return NetlistParser().parse(text, title=title)
