"""Pluggable linear-solver backends for the MNA engines.

Every analysis in this package reduces to repeated solves of MNA systems
that share one sparsity pattern: the DC Newton loop re-stamps only
nonlinear devices into a fixed structure, every AC frequency point
re-scales the same ``(G, B)`` pair, and multi-rhs measurements reuse one
matrix outright.  Two backends exploit this to different degrees:

``DenseBackend``
    Wraps today's dense code paths bit-identically: NumPy ``Stamper``
    assembly and LAPACK ``np.linalg.solve`` (including the broadcast
    ``(F, n, n)`` batch form for AC sweeps).  Right at opamp size
    (~10-30 unknowns) where sparse bookkeeping costs more than it saves.

``SparseBackend``
    Assembles device stamps directly into COO triplets
    (:class:`TripletStamper`), computes the CSC sparsity pattern **once
    per circuit topology** (cached on :class:`~repro.circuit.netlist.MnaLayout`,
    keyed by analysis kind), and re-fills only the numeric values on
    every solve.  Factorizations come from ``scipy.sparse.linalg.splu``;
    multi-rhs solves are triangular back-substitutions on one
    factorization, and AC sweeps re-factor per frequency while reusing
    the symbolic structure and the pre-merged ``(G, B)`` value arrays.

    One subtlety keeps the pattern cache honest: a MOSFET swaps its
    drain/source stamp indices when ``vds`` changes sign, so the DC
    triplet pattern is *not* strictly fixed across Newton iterations.
    The cached pattern therefore stores its fingerprint (the raw
    row/column sequence of the stamp calls) and transparently rebuilds
    when a stamp sequence with a different fingerprint shows up.

Backend selection is automatic by node count (:func:`resolve_backend`):
circuits below :data:`AUTO_SPARSE_MIN_NODES` unknowns stay on the dense
path — which keeps every pre-existing template bit-identical — while
large templates (e.g. ``two_stage_array``) switch to sparse.  An explicit
``"dense"``/``"sparse"`` override is threaded from the CLI through
``OptimizerConfig``/``Evaluator`` down to here.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

try:  # private SuperLU entry point backing scipy.sparse.linalg.splu
    from scipy.sparse.linalg._dsolve import _superlu as _superlu_mod
except ImportError:  # pragma: no cover - older/newer scipy layout
    _superlu_mod = None

from ..errors import ReproError, SingularMatrixError
from .devices import Stamper
from .netlist import Circuit, MnaLayout

#: Node count at or above which ``"auto"`` selects the sparse backend.
#: Calibrated in-container: on ladder/hub-structured MNA matrices the
#: splu path breaks even with dense LAPACK near ~120 unknowns and wins
#: 4-20x by ~260; every shipped opamp template (~10-30 nodes) stays
#: dense — and therefore bit-identical to the pre-backend code.
AUTO_SPARSE_MIN_NODES = 120


class TripletStamper:
    """COO-triplet MNA accumulator, duck-typed to :class:`Stamper`.

    Devices stamp into it exactly as into the dense ``Stamper`` (ground
    index ``-1`` silently discarded); instead of scattering into an
    ``(n, n)`` array it records ``(row, col, value)`` triplets whose
    *sequence* — for a fixed circuit topology and operating region — is
    identical call after call, which is what makes the cached-pattern
    fill (:class:`SparsePattern`) a single ``np.bincount``.
    """

    def __init__(self, size: int, dtype=float):
        self.size = size
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.vals: List[complex] = []
        self.rhs = np.zeros(size, dtype=dtype)

    def add(self, row: int, col: int, value) -> None:
        if row >= 0 and col >= 0:
            self.rows.append(row)
            self.cols.append(col)
            self.vals.append(value)

    def add_rhs(self, row: int, value) -> None:
        if row >= 0:
            self.rhs[row] += value

    def add_conductance(self, a: int, b: int, g) -> None:
        self.add(a, a, g)
        self.add(b, b, g)
        self.add(a, b, -g)
        self.add(b, a, -g)

    def add_diagonal(self, n: int, value: float) -> None:
        """Stamp ``value`` onto the first ``n`` diagonal entries (gmin)."""
        self.rows.extend(range(n))
        self.cols.extend(range(n))
        self.vals.extend([value] * n)


class SparsePattern:
    """Symbolic CSC structure of one stamp-call sequence.

    Built once per (topology, analysis-kind); afterwards a numeric fill
    is ``np.bincount(slot_map, weights=values)`` — every triplet knows
    which deduplicated CSC slot it accumulates into.
    """

    __slots__ = ("size", "rows", "cols", "slot_map", "indices", "indptr",
                 "nnz", "_template", "_factorizer")

    def __init__(self, rows: np.ndarray, cols: np.ndarray, size: int):
        self.size = size
        self.rows = rows
        self.cols = cols
        order = np.lexsort((rows, cols))
        r, c = rows[order], cols[order]
        if r.size == 0:
            raise SingularMatrixError("empty MNA system has no pattern")
        first = np.empty(r.size, dtype=bool)
        first[0] = True
        first[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        slot_of_sorted = np.cumsum(first) - 1
        slot_map = np.empty(r.size, dtype=np.intp)
        slot_map[order] = slot_of_sorted
        self.slot_map = slot_map
        self.indices = r[first].astype(np.int32)
        self.nnz = int(self.indices.size)
        counts = np.bincount(c[first], minlength=size)
        indptr = np.zeros(size + 1, dtype=np.int32)
        np.cumsum(counts, out=indptr[1:])
        self.indptr = indptr
        self._template = None
        self._factorizer = None

    def matches(self, rows: np.ndarray, cols: np.ndarray) -> bool:
        """Fingerprint check: same stamp-call sequence as when built?"""
        return (rows.size == self.rows.size
                and np.array_equal(rows, self.rows)
                and np.array_equal(cols, self.cols))

    def fill(self, values: np.ndarray) -> np.ndarray:
        """Deduplicated CSC data array for one triplet value vector."""
        if np.iscomplexobj(values):
            return (np.bincount(self.slot_map, weights=values.real,
                                minlength=self.nnz)
                    + 1j * np.bincount(self.slot_map, weights=values.imag,
                                       minlength=self.nnz))
        return np.bincount(self.slot_map, weights=values,
                           minlength=self.nnz)

    def factor(self, data: np.ndarray, context: str):
        """Factor one filled CSC ``data`` vector on this pattern.

        Bitwise-equal to ``_splu_factor(self.matrix(data), context)`` but
        with scipy's per-call ``splu`` setup (format checks, index
        casting, option-dict assembly — ~35us/call) hoisted into a
        per-pattern cache, which matters to hot loops that factor the
        same pattern thousands of times per run."""
        f = self._factorizer
        if f is None:
            f = self._factorizer = PatternFactorizer(self)
        return f.factor(data, context)

    def matrix(self, data: np.ndarray) -> sp.csc_matrix:
        # Reuse one CSC shell per pattern: indices/indptr never change,
        # so per-iteration assembly is a plain ``data`` swap (skipping
        # construction and format validation).  Callers consume the
        # matrix immediately (factor or densify) and never keep it.
        mat = self._template
        if mat is None:
            mat = sp.csc_matrix((data, self.indices, self.indptr),
                                shape=(self.size, self.size))
            self._template = mat
        else:
            mat.data = data
        return mat


def get_pattern(layout: MnaLayout, kind: str, rows: np.ndarray,
                cols: np.ndarray) -> SparsePattern:
    """The cached :class:`SparsePattern` for ``kind`` on ``layout``,
    rebuilt transparently when the stamp fingerprint changed (MOSFET
    drain/source swap regions)."""
    cache = layout.sparse_patterns
    pattern = cache.get(kind)
    if pattern is None or not pattern.matches(rows, cols):
        pattern = SparsePattern(rows, cols, layout.size)
        cache[kind] = pattern
    return pattern


def _splu_factor(matrix: sp.csc_matrix, context: str):
    """``splu`` with the package's error taxonomy: a structurally or
    numerically singular matrix raises :class:`SingularMatrixError`, the
    same class the dense path maps ``LinAlgError`` to."""
    try:
        # MMD on A^T + A: MNA matrices are structurally near-symmetric,
        # and this ordering measures a few percent faster than the
        # COLAMD default at these sizes.
        return splu(matrix, permc_spec="MMD_AT_PLUS_A")
    except RuntimeError as exc:  # "Factor is exactly singular"
        raise SingularMatrixError(f"singular MNA matrix in {context}: "
                                  f"{exc}") from exc
    except ValueError as exc:  # structurally deficient (empty row/col)
        raise SingularMatrixError(
            f"structurally singular MNA matrix in {context}: {exc}"
        ) from exc


class PatternFactorizer:
    """Per-pattern ``splu`` with scipy's call setup hoisted out.

    ``scipy.sparse.linalg.splu`` re-derives the same arguments on every
    call — CSC format checks, ``intc`` index casts, the SuperLU option
    dict — before handing off to ``_superlu.gstrf``.  A pattern's
    structure never changes, so those derivations are computed once here
    and ``gstrf`` is then invoked directly with byte-identical inputs:
    the returned ``SuperLU`` object (and every solve on it) is bitwise
    equal to :func:`_splu_factor` on the same data.  The pattern's fill
    output is already deduplicated, column-sorted and C-contiguous, so
    scipy's canonicalization steps are no-ops by construction.

    If scipy's private entry point is absent or its signature moved,
    every call transparently falls back to :func:`_splu_factor`.
    """

    __slots__ = ("_pattern", "_args", "_options")

    def __init__(self, pattern: SparsePattern):
        self._pattern = pattern
        self._args = None
        if _superlu_mod is not None:
            indices = np.ascontiguousarray(pattern.indices, dtype=np.intc)
            indptr = np.ascontiguousarray(pattern.indptr, dtype=np.intc)
            self._args = (pattern.size, pattern.nnz, indices, indptr)
            # Exactly the dict splu() builds for permc_spec="MMD_AT_PLUS_A".
            self._options = dict(DiagPivotThresh=None,
                                 ColPerm="MMD_AT_PLUS_A",
                                 PanelSize=None, Relax=None)

    def factor(self, data: np.ndarray, context: str):
        args = self._args
        if args is None:
            return _splu_factor(self._pattern.matrix(data), context)
        size, nnz, indices, indptr = args
        try:
            return _superlu_mod.gstrf(
                size, nnz, data, indices, indptr,
                csc_construct_func=sp.csc_array, ilu=False,
                options=self._options)
        except RuntimeError as exc:  # "Factor is exactly singular"
            raise SingularMatrixError(f"singular MNA matrix in {context}: "
                                      f"{exc}") from exc
        except ValueError as exc:  # structurally deficient (empty row/col)
            raise SingularMatrixError(
                f"structurally singular MNA matrix in {context}: {exc}"
            ) from exc
        except TypeError:  # pragma: no cover - gstrf signature changed
            self._args = None
            return _splu_factor(self._pattern.matrix(data), context)


# -- DC systems ---------------------------------------------------------------
class DenseDcSystem:
    """Today's dense DC assembly, verbatim: stamp linear devices (and the
    gmin diagonal) once, copy + re-stamp nonlinear devices per Newton
    iteration, LAPACK-solve the full matrix."""

    def __init__(self, circuit: Circuit, layout: MnaLayout, gmin: float):
        self._circuit = circuit
        self._layout = layout
        base = Stamper(layout.size)
        for dev, nodes, branches in zip(circuit.devices,
                                        layout.device_nodes,
                                        layout.device_branches):
            if dev.linear:
                dev.stamp_dc(base, np.zeros(0), nodes, branches)
        if gmin > 0.0:
            diag = np.arange(layout.n_nodes)
            base.matrix[diag, diag] += gmin
        self._base = base

    def solve_at(self, x: np.ndarray) -> np.ndarray:
        circuit, layout = self._circuit, self._layout
        st = Stamper(layout.size)
        st.matrix[...] = self._base.matrix
        st.rhs[...] = self._base.rhs
        for dev, nodes, branches in zip(circuit.devices,
                                        layout.device_nodes,
                                        layout.device_branches):
            if not dev.linear:
                dev.stamp_dc(st, x, nodes, branches)
        try:
            return np.linalg.solve(st.matrix, st.rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular MNA matrix in circuit {circuit.title!r} "
                f"(floating node or source loop?): {exc}") from exc


class SparseDcSystem:
    """Sparse DC assembly: linear-device triplets frozen once per
    ``(gmin)`` stage, nonlinear triplets appended per Newton iteration,
    numeric fill through the layout-cached pattern, ``splu`` solve.

    The symbolic pattern survives across Newton iterations, gmin/source
    stepping stages *and* warm-started re-evaluations of the same
    topology — only the numeric factorization is redone per iteration.
    """

    def __init__(self, circuit: Circuit, layout: MnaLayout, gmin: float):
        self._circuit = circuit
        self._layout = layout
        st = TripletStamper(layout.size)
        self._nonlinear = []
        for dev, nodes, branches in zip(circuit.devices,
                                        layout.device_nodes,
                                        layout.device_branches):
            if dev.linear:
                dev.stamp_dc(st, np.zeros(0), nodes, branches)
            else:
                self._nonlinear.append((dev, nodes, branches))
        if gmin > 0.0:
            st.add_diagonal(layout.n_nodes, gmin)
        self._base_rows = np.asarray(st.rows, dtype=np.int32)
        self._base_cols = np.asarray(st.cols, dtype=np.int32)
        self._base_vals = np.asarray(st.vals, dtype=float)
        self._base_rhs = st.rhs
        self._fill_cache = None

    def solve_at(self, x: np.ndarray) -> np.ndarray:
        layout = self._layout
        st = TripletStamper(layout.size)
        for dev, nodes, branches in self._nonlinear:
            dev.stamp_dc(st, x, nodes, branches)
        nl_rows = np.asarray(st.rows, dtype=np.int32)
        nl_cols = np.asarray(st.cols, dtype=np.int32)
        cache = self._fill_cache
        if (cache is not None and np.array_equal(nl_rows, cache[0])
                and np.array_equal(nl_cols, cache[1])):
            # Newton iterations almost always repeat the previous
            # stamp sequence; reuse the concatenated index arrays and
            # only refresh the nonlinear tail of the value buffer.
            rows, cols, vals = cache[2], cache[3], cache[4]
            vals[self._base_vals.size:] = st.vals
        else:
            rows = np.concatenate([self._base_rows, nl_rows])
            cols = np.concatenate([self._base_cols, nl_cols])
            vals = np.concatenate([self._base_vals,
                                   np.asarray(st.vals, dtype=float)])
            self._fill_cache = (nl_rows, nl_cols, rows, cols, vals)
        pattern = get_pattern(layout, "dc", rows, cols)
        matrix = pattern.matrix(pattern.fill(vals))
        lu = _splu_factor(
            matrix, f"circuit {self._circuit.title!r} "
                    f"(floating node or source loop?)")
        return lu.solve(self._base_rhs + st.rhs)


# -- AC engines ---------------------------------------------------------------
class DenseAcEngine:
    """Dense ``(G + j*omega*B) x = rhs`` engine — the pre-backend
    :class:`~repro.circuit.ac.AcSystem` internals, verbatim (broadcast
    batch solves included), plus the explicit real-valued ``omega = 0``
    path shared by both backends."""

    def __init__(self, circuit: Circuit, layout: MnaLayout, ops):
        self._circuit = circuit
        self._layout = layout
        st_g = Stamper(layout.size, dtype=complex)
        st_b = Stamper(layout.size, dtype=complex)
        for dev, nodes, branches in zip(circuit.devices,
                                        layout.device_nodes,
                                        layout.device_branches):
            dev.stamp_ac_parts(st_g, st_b, nodes, branches,
                               ops.get(dev.name))
        diag = np.arange(layout.n_nodes)
        st_g.matrix[diag, diag] += 1e-12
        self._g = st_g.matrix
        self._b = st_b.matrix
        self.rhs = st_g.rhs + st_b.rhs

    def with_rhs(self, rhs: np.ndarray) -> "DenseAcEngine":
        clone = object.__new__(DenseAcEngine)
        clone._circuit = self._circuit
        clone._layout = self._layout
        clone._g = self._g
        clone._b = self._b
        clone.rhs = rhs
        return clone

    def same_matrix(self, other) -> bool:
        return (isinstance(other, DenseAcEngine)
                and (other._g is self._g
                     or np.array_equal(other._g, self._g))
                and (other._b is self._b
                     or np.array_equal(other._b, self._b)))

    def dense_g(self) -> np.ndarray:
        return self._g

    def dense_b(self) -> np.ndarray:
        return self._b

    def _solve(self, omega: float, rhs: np.ndarray,
               context: str) -> np.ndarray:
        # At omega = 0 the B stack drops out *exactly*: solve the
        # real-valued G system instead of a complex system whose
        # imaginary part is structurally zero.  G's entries are real by
        # construction (only source rhs values are complex), so this is
        # the same linear system without the degenerate imaginary half.
        if omega == 0.0:
            a = self._g.real
        else:
            a = self._g + 1j * omega * self._b
        try:
            return np.linalg.solve(a, rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular AC matrix {context} in circuit "
                f"{self._circuit.title!r}: {exc}") from exc

    def solve(self, omega: float) -> np.ndarray:
        return self._solve(omega, self.rhs,
                           f"at f={omega / (2.0 * math.pi):g} Hz")

    def solve_many(self, omegas: np.ndarray) -> np.ndarray:
        if np.any(omegas == 0.0):
            # Mixed grids containing DC fall back to per-frequency
            # solves so omega = 0 gets its real-valued treatment.
            return np.stack([self.solve(float(w)) for w in omegas])
        a = self._g[None, :, :] \
            + 1j * omegas[:, None, None] * self._b[None, :, :]
        try:
            return np.linalg.solve(a, self.rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular AC matrix in {len(omegas)}-frequency batch in "
                f"circuit {self._circuit.title!r}: {exc}") from exc

    def multi_rhs(self, omega: float, rhs: np.ndarray,
                  context: str) -> np.ndarray:
        """One factorization, many right-hand sides (columns)."""
        return self._solve(omega, rhs, context)


class SparseAcEngine:
    """Sparse AC engine: one *union* pattern over the G and B triplets
    (cached on the layout), pre-merged full-length value arrays, so a
    frequency point is a vectorized ``g + j*omega*b`` combine plus one
    ``splu`` — and every multi-rhs solve at a fixed frequency is pure
    triangular back-substitution on the last factorization."""

    def __init__(self, circuit: Circuit, layout: MnaLayout, ops):
        self._circuit = circuit
        self._layout = layout
        st_g = TripletStamper(layout.size, dtype=complex)
        st_b = TripletStamper(layout.size, dtype=complex)
        for dev, nodes, branches in zip(circuit.devices,
                                        layout.device_nodes,
                                        layout.device_branches):
            dev.stamp_ac_parts(st_g, st_b, nodes, branches,
                               ops.get(dev.name))
        st_g.add_diagonal(layout.n_nodes, 1e-12)
        n_g = len(st_g.rows)
        rows = np.asarray(st_g.rows + st_b.rows, dtype=np.int32)
        cols = np.asarray(st_g.cols + st_b.cols, dtype=np.int32)
        self._pattern = get_pattern(layout, "ac", rows, cols)
        # Scatter G and B separately onto the shared union pattern once;
        # per-frequency work is then a single vectorized combine.
        vals = np.zeros(rows.size, dtype=complex)
        vals[:n_g] = st_g.vals
        self._g_full = self._pattern.fill(vals)
        vals[:] = 0.0
        vals[n_g:] = st_b.vals
        self._b_full = self._pattern.fill(vals)
        self.rhs = st_g.rhs + st_b.rhs
        # Memoized (omega, lu) of the last factorization.  A mutable
        # holder rather than plain attributes so re-driven clones — which
        # share (pattern, g, b) and hence factorizations — reuse it.
        self._lu_memo: List = [None, None]

    def with_rhs(self, rhs: np.ndarray) -> "SparseAcEngine":
        clone = object.__new__(SparseAcEngine)
        clone._circuit = self._circuit
        clone._layout = self._layout
        clone._pattern = self._pattern
        clone._g_full = self._g_full
        clone._b_full = self._b_full
        clone.rhs = rhs
        clone._lu_memo = self._lu_memo
        return clone

    def same_matrix(self, other) -> bool:
        return (isinstance(other, SparseAcEngine)
                and other._pattern is self._pattern
                and (other._g_full is self._g_full
                     or np.array_equal(other._g_full, self._g_full))
                and (other._b_full is self._b_full
                     or np.array_equal(other._b_full, self._b_full)))

    def dense_g(self) -> np.ndarray:
        """Densified G — for cold-path consumers (noise adjoint)."""
        return self._pattern.matrix(self._g_full).toarray()

    def dense_b(self) -> np.ndarray:
        return self._pattern.matrix(self._b_full).toarray()

    def _factor(self, omega: float, context: str):
        if self._lu_memo[1] is not None and self._lu_memo[0] == omega:
            return self._lu_memo[1]
        if omega == 0.0:
            # SuperLU needs C-contiguous data; ``.real`` is a strided view.
            data = np.ascontiguousarray(self._g_full.real)
        else:
            data = self._g_full + 1j * omega * self._b_full
        lu = self._pattern.factor(data,
                                  f"AC system {context} in circuit "
                                  f"{self._circuit.title!r}")
        self._lu_memo[0] = omega
        self._lu_memo[1] = lu
        return lu

    def _solve(self, omega: float, rhs: np.ndarray,
               context: str) -> np.ndarray:
        lu = self._factor(omega, context)
        if omega == 0.0:
            # Real factorization, complex rhs: two triangular solves.
            return (lu.solve(np.ascontiguousarray(rhs.real))
                    + 1j * lu.solve(np.ascontiguousarray(rhs.imag)))
        return lu.solve(rhs)

    def solve(self, omega: float) -> np.ndarray:
        return self._solve(omega, self.rhs,
                           f"at f={omega / (2.0 * math.pi):g} Hz")

    def solve_many(self, omegas: np.ndarray) -> np.ndarray:
        out = np.empty((len(omegas), self._layout.size), dtype=complex)
        for i, omega in enumerate(omegas):
            out[i] = self._solve(float(omega), self.rhs,
                                 f"in {len(omegas)}-frequency batch")
        return out

    def multi_rhs(self, omega: float, rhs: np.ndarray,
                  context: str) -> np.ndarray:
        lu = self._factor(omega, context)
        if omega == 0.0:
            return (lu.solve(np.ascontiguousarray(rhs.real))
                    + 1j * lu.solve(np.ascontiguousarray(rhs.imag)))
        return lu.solve(rhs)


# -- backends -----------------------------------------------------------------
class DenseBackend:
    """Dense LAPACK backend (bit-identical to the pre-backend code)."""

    name = "dense"

    def dc_system(self, circuit: Circuit, layout: MnaLayout,
                  gmin: float) -> DenseDcSystem:
        return DenseDcSystem(circuit, layout, gmin)

    def ac_engine(self, circuit: Circuit, layout: MnaLayout,
                  ops) -> DenseAcEngine:
        return DenseAcEngine(circuit, layout, ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class SparseBackend(DenseBackend):
    """CSC + ``splu`` backend with symbolic-pattern reuse."""

    name = "sparse"

    def dc_system(self, circuit: Circuit, layout: MnaLayout,
                  gmin: float) -> SparseDcSystem:
        return SparseDcSystem(circuit, layout, gmin)

    def ac_engine(self, circuit: Circuit, layout: MnaLayout,
                  ops) -> SparseAcEngine:
        return SparseAcEngine(circuit, layout, ops)


#: Module singletons — backends are stateless (all per-topology state
#: lives on the :class:`MnaLayout` pattern cache), so one instance each.
DENSE = DenseBackend()
SPARSE = SparseBackend()

_BY_NAME = {"dense": DENSE, "sparse": SPARSE}


def resolve_backend(spec, n_nodes: int) -> DenseBackend:
    """Resolve a backend spec — ``None``/``"auto"``, a backend name, or
    an instance — against the circuit's node count.

    ``"auto"`` (and ``None``) picks sparse at or above
    :data:`AUTO_SPARSE_MIN_NODES` nodes, dense below; every template
    that predates the backend layer sits far below the threshold and so
    keeps its exact dense numerics.
    """
    if spec is None or spec == "auto":
        return SPARSE if n_nodes >= AUTO_SPARSE_MIN_NODES else DENSE
    if isinstance(spec, str):
        backend = _BY_NAME.get(spec)
        if backend is None:
            raise ReproError(
                f"unknown linear-solver backend {spec!r}; expected one of "
                f"'auto', 'dense', 'sparse'")
        return backend
    return spec
