"""DC operating-point solver.

Newton-Raphson on the MNA companion-model formulation with up to four
layers of robustness, applied in order until one converges:

1. warm-started damped Newton from a supplied nearby operating point
   (``x0``): a statistical sample or finite-difference step lands a few
   millivolts from its anchor, so this converges in a handful of
   iterations instead of the ~20 a cold solve needs,
2. plain damped Newton from the zero vector (the classic cold start;
   this is stage 1 when no ``x0`` is given),
3. gmin stepping: solve with a large conductance from every node to ground,
   then relax it geometrically down to ``GMIN_FINAL``,
4. source stepping: ramp all independent sources from 0 to 100 %.

Opamp circuits with the smooth level-1 model almost always converge in
the first applicable stage; the homotopies cover pathological
statistical corners so the Monte-Carlo and worst-case loops never die on
a single sample.  A bad warm start can only cost iterations, never
correctness: the cold chain below it is exactly the chain that runs when
no ``x0`` is supplied.

:class:`WarmStartCache` is the bounded anchor store the evaluation layer
uses to key warm starts on quantized ``(d, theta)`` cells.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ConvergenceError, SingularMatrixError
from .devices import Device, Isource, Stamper, Vsource, _voltage
from .netlist import Circuit, MnaLayout

#: Final shunt conductance left on every node, as in SPICE.
GMIN_FINAL = 1e-12

#: Absolute/relative Newton convergence tolerances on the update step.
ABSTOL_V = 1e-9
RELTOL = 1e-6

#: Maximum Newton iterations per (gmin, source-scale) stage.
MAX_ITERATIONS = 120

#: Voltage-step damping limit per Newton iteration [V].
MAX_STEP_V = 0.6


class DCResult:
    """Solved DC operating point.

    Provides node-voltage lookup, per-device operating-point records and the
    branch currents of voltage sources (for power measurements).
    """

    def __init__(self, circuit: Circuit, layout: MnaLayout, x: np.ndarray,
                 temp_c: float, iterations: int, strategy: str):
        self._circuit = circuit
        self._layout = layout
        self.x = x
        self.temp_c = temp_c
        self.iterations = iterations
        self.strategy = strategy
        self._ops: Optional[Dict[str, dict]] = None

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` relative to ground."""
        index = self._layout.node_index.get(node)
        if index is None:
            from .netlist import is_ground
            if is_ground(node):
                return 0.0
            raise KeyError(f"unknown node {node!r}")
        return _voltage(self.x, index)

    def voltages(self) -> Dict[str, float]:
        """All node voltages as a dict."""
        return {name: _voltage(self.x, i)
                for name, i in self._layout.node_index.items() if i >= 0}

    def operating_points(self) -> Dict[str, dict]:
        """Per-device operating-point records, keyed by device name."""
        if self._ops is None:
            ops: Dict[str, dict] = {}
            for dev, nodes, branches in zip(self._circuit.devices,
                                            self._layout.device_nodes,
                                            self._layout.device_branches):
                record = dev.operating_point(self.x, nodes, branches)
                if record is not None:
                    ops[dev.name] = record
            self._ops = ops
        return self._ops

    def op(self, device_name: str) -> dict:
        """Operating-point record of one device."""
        ops = self.operating_points()
        if device_name not in ops:
            raise KeyError(f"no operating point for device {device_name!r}")
        return ops[device_name]

    def source_current(self, source_name: str) -> float:
        """Branch current through an independent voltage source, flowing
        from its positive terminal through the source to the negative one."""
        for dev, branches in zip(self._circuit.devices,
                                 self._layout.device_branches):
            if dev.name == source_name:
                if not branches:
                    raise KeyError(
                        f"device {source_name!r} has no branch current")
                return float(self.x[branches[0]])
        raise KeyError(f"no device named {source_name!r}")


def _linear_base(circuit: Circuit, layout: MnaLayout,
                 gmin: float) -> Stamper:
    """Stamp all linear devices (and the gmin diagonal) once; the Newton
    loop only re-stamps the nonlinear devices on top of a copy."""
    st = Stamper(layout.size)
    for dev, nodes, branches in zip(circuit.devices, layout.device_nodes,
                                    layout.device_branches):
        if dev.linear:
            dev.stamp_dc(st, np.zeros(0), nodes, branches)
    if gmin > 0.0:
        diag = np.arange(layout.n_nodes)
        st.matrix[diag, diag] += gmin
    return st


def _assemble(circuit: Circuit, layout: MnaLayout, x: np.ndarray,
              base: Stamper) -> Stamper:
    st = Stamper(layout.size)
    st.matrix[...] = base.matrix
    st.rhs[...] = base.rhs
    for dev, nodes, branches in zip(circuit.devices, layout.device_nodes,
                                    layout.device_branches):
        if not dev.linear:
            dev.stamp_dc(st, x, nodes, branches)
    return st


def _newton(circuit: Circuit, layout: MnaLayout, x0: np.ndarray,
            gmin: float) -> tuple[np.ndarray, int]:
    """Damped Newton iteration; raises ConvergenceError on failure."""
    x = x0.copy()
    base = _linear_base(circuit, layout, gmin)
    for iteration in range(1, MAX_ITERATIONS + 1):
        st = _assemble(circuit, layout, x, base)
        try:
            x_new = np.linalg.solve(st.matrix, st.rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular MNA matrix in circuit {circuit.title!r} "
                f"(floating node or source loop?): {exc}") from exc
        if not np.all(np.isfinite(x_new)):
            raise ConvergenceError(
                f"non-finite Newton update in circuit {circuit.title!r}")
        delta = x_new - x
        # Damp only the node-voltage part; branch currents may legitimately
        # jump by large amounts.
        nv = layout.n_nodes
        step = np.max(np.abs(delta[:nv])) if nv else 0.0
        if step > MAX_STEP_V:
            x = x + delta * (MAX_STEP_V / step)
            continue
        x = x_new
        if step <= ABSTOL_V + RELTOL * np.max(np.abs(x[:nv])) if nv else True:
            return x, iteration
    raise ConvergenceError(
        f"Newton did not converge in {MAX_ITERATIONS} iterations "
        f"(circuit {circuit.title!r}, gmin={gmin:g})")


def _gmin_stepping(circuit: Circuit, layout: MnaLayout,
                   x0: np.ndarray) -> tuple[np.ndarray, int]:
    x = x0.copy()
    total = 0
    gmin = 1e-2
    while gmin >= GMIN_FINAL:
        x, iters = _newton(circuit, layout, x, gmin)
        total += iters
        gmin *= 1e-2
    x, iters = _newton(circuit, layout, x, GMIN_FINAL)
    return x, total + iters


def _source_stepping(circuit: Circuit, layout: MnaLayout,
                     x0: np.ndarray) -> tuple[np.ndarray, int]:
    sources = [d for d in circuit.devices if isinstance(d, (Vsource, Isource))]
    x = x0.copy()
    total = 0
    try:
        for scale in (0.1, 0.3, 0.5, 0.7, 0.85, 0.95, 1.0):
            for src in sources:
                src.scale = scale
            x, iters = _newton(circuit, layout, x, GMIN_FINAL)
            total += iters
    finally:
        for src in sources:
            src.scale = 1.0
    return x, total


def solve_dc(circuit: Circuit, temp_c: float = 27.0,
             x0: Optional[np.ndarray] = None) -> DCResult:
    """Find the DC operating point of ``circuit`` at ``temp_c`` Celsius.

    ``x0`` seeds a leading "newton-warm" stage (e.g. with the solution of
    a nearby statistical sample), which dramatically speeds up
    Monte-Carlo loops; the cold strategy chain below it is unchanged, so
    a bad guess costs iterations but never the solution.

    Raises :class:`ConvergenceError` if all homotopy strategies fail.
    """
    layout = circuit.layout()
    for dev in circuit.devices:
        dev.prepare(temp_c)

    strategies = []
    if x0 is not None and len(x0) == layout.size \
            and np.all(np.isfinite(x0)):
        warm = np.asarray(x0, dtype=float).copy()
        strategies.append(
            ("newton-warm", lambda: _newton(circuit, layout, warm,
                                            GMIN_FINAL)))
    strategies += [
        ("newton", lambda: _newton(circuit, layout,
                                   np.zeros(layout.size), GMIN_FINAL)),
        ("gmin-stepping", lambda: _gmin_stepping(circuit, layout,
                                                 np.zeros(layout.size))),
        ("source-stepping", lambda: _source_stepping(circuit, layout,
                                                     np.zeros(layout.size))),
    ]
    last_error: Optional[Exception] = None
    for label, run in strategies:
        try:
            x, iterations = run()
            return DCResult(circuit, layout, x, temp_c, iterations, label)
        except ConvergenceError as exc:
            last_error = exc
    raise ConvergenceError(
        f"all DC strategies failed for circuit {circuit.title!r}: "
        f"{last_error}")


class WarmStartCache:
    """Bounded FIFO store of DC anchor solutions, keyed by quantized
    ``(d, theta)`` cells.

    A key maps to the solved ``x`` vector of its cell's *representative*
    point, or to ``None`` when that solve failed (negative caching, so a
    dead cell is not re-attempted on every sample).  Entries are evicted
    oldest-first once ``maxsize`` is reached; anchors are cheap to
    recompute, so no LRU bookkeeping is justified on this hot path.
    """

    _MISSING = object()

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: Dict[tuple, Optional[np.ndarray]] = {}

    def lookup(self, key: tuple):
        """The cached anchor (may be None for a failed cell), or the
        :data:`WarmStartCache._MISSING` sentinel when unknown."""
        value = self._data.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def store(self, key: tuple, x) -> None:
        """Cache an anchor: ``None`` (failed cell), an ``x`` vector, or a
        tuple of per-cell artifacts (solution, sensitivities, hints...).
        Arrays are copied so callers cannot mutate cached state."""
        if key not in self._data and len(self._data) >= self.maxsize:
            self._data.pop(next(iter(self._data)))
        if x is None:
            value = None
        elif isinstance(x, tuple):
            value = tuple(np.array(part, dtype=float, copy=True)
                          if isinstance(part, np.ndarray) else part
                          for part in x)
        else:
            value = np.asarray(x, dtype=float).copy()
        self._data[key] = value

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)
