"""DC operating-point solver.

Newton-Raphson on the MNA companion-model formulation with up to four
layers of robustness, applied in order until one converges:

1. warm-started damped Newton from a supplied nearby operating point
   (``x0``): a statistical sample or finite-difference step lands a few
   millivolts from its anchor, so this converges in a handful of
   iterations instead of the ~20 a cold solve needs,
2. plain damped Newton from the zero vector (the classic cold start;
   this is stage 1 when no ``x0`` is given),
3. gmin stepping: solve with a large conductance from every node to ground,
   then relax it geometrically down to ``GMIN_FINAL``,
4. source stepping: ramp all independent sources from 0 to 100 %.

Opamp circuits with the smooth level-1 model almost always converge in
the first applicable stage; the homotopies cover pathological
statistical corners so the Monte-Carlo and worst-case loops never die on
a single sample.  A bad warm start can only cost iterations, never
correctness: the cold chain below it is exactly the chain that runs when
no ``x0`` is supplied.

:class:`WarmStartCache` is the bounded anchor store the evaluation layer
uses to key warm starts on quantized ``(d, theta)`` cells.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

import numpy as np

from ..errors import ConvergenceError
from .devices import Isource, Vsource, _voltage
from .linsolve import resolve_backend
from .netlist import Circuit, MnaLayout

#: Final shunt conductance left on every node, as in SPICE.
GMIN_FINAL = 1e-12

#: Gmin-stepping homotopy: start conductance and geometric relaxation
#: factor.  The schedule values are *products* of repeated multiplication
#: (see :func:`gmin_schedule`), which is not bitwise the same as the
#: round literals — both the serial and the batched solver must iterate
#: the shared generator so they cannot drift.
GMIN_START = 1e-2
GMIN_FACTOR = 1e-2

#: Source-stepping homotopy ramp, shared by the serial and batched
#: solvers.  Every independent source is scaled by each value in turn.
SOURCE_SCALES = (0.1, 0.3, 0.5, 0.7, 0.85, 0.95, 1.0)

#: Absolute/relative Newton convergence tolerances on the update step.
ABSTOL_V = 1e-9
RELTOL = 1e-6

#: Maximum Newton iterations per (gmin, source-scale) stage.
MAX_ITERATIONS = 120

#: Voltage-step damping limit per Newton iteration [V].
MAX_STEP_V = 0.6


def gmin_schedule() -> Iterator[float]:
    """The gmin-stepping conductance schedule, ending on ``GMIN_FINAL``.

    Yields ``GMIN_START`` relaxed geometrically by ``GMIN_FACTOR`` while
    above ``GMIN_FINAL``, then ``GMIN_FINAL`` itself for the finishing
    solve.  Serial gmin stepping and the lockstep batched homotopy both
    iterate this generator, so the stage conductances are bitwise
    identical by construction.
    """
    gmin = GMIN_START
    while gmin >= GMIN_FINAL:
        yield gmin
        gmin *= GMIN_FACTOR
    yield GMIN_FINAL


class DCResult:
    """Solved DC operating point.

    Provides node-voltage lookup, per-device operating-point records and the
    branch currents of voltage sources (for power measurements).
    """

    def __init__(self, circuit: Circuit, layout: MnaLayout, x: np.ndarray,
                 temp_c: float, iterations: int, strategy: str):
        self._circuit = circuit
        self._layout = layout
        self.x = x
        self.temp_c = temp_c
        self.iterations = iterations
        self.strategy = strategy
        self._ops: Optional[Dict[str, dict]] = None

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` relative to ground."""
        index = self._layout.node_index.get(node)
        if index is None:
            from .netlist import is_ground
            if is_ground(node):
                return 0.0
            raise KeyError(f"unknown node {node!r}")
        return _voltage(self.x, index)

    def voltages(self) -> Dict[str, float]:
        """All node voltages as a dict."""
        return {name: _voltage(self.x, i)
                for name, i in self._layout.node_index.items() if i >= 0}

    def operating_points(self) -> Dict[str, dict]:
        """Per-device operating-point records, keyed by device name."""
        if self._ops is None:
            ops: Dict[str, dict] = {}
            for dev, nodes, branches in zip(self._circuit.devices,
                                            self._layout.device_nodes,
                                            self._layout.device_branches):
                record = dev.operating_point(self.x, nodes, branches)
                if record is not None:
                    ops[dev.name] = record
            self._ops = ops
        return self._ops

    def op(self, device_name: str) -> dict:
        """Operating-point record of one device."""
        ops = self.operating_points()
        if device_name not in ops:
            raise KeyError(f"no operating point for device {device_name!r}")
        return ops[device_name]

    def source_current(self, source_name: str) -> float:
        """Branch current through an independent voltage source, flowing
        from its positive terminal through the source to the negative one."""
        for dev, branches in zip(self._circuit.devices,
                                 self._layout.device_branches):
            if dev.name == source_name:
                if not branches:
                    raise KeyError(
                        f"device {source_name!r} has no branch current")
                return float(self.x[branches[0]])
        raise KeyError(f"no device named {source_name!r}")


def _newton(circuit: Circuit, layout: MnaLayout, x0: np.ndarray,
            gmin: float, backend) -> tuple[np.ndarray, int]:
    """Damped Newton iteration; raises ConvergenceError on failure.

    The linear-solve kernel comes from ``backend``
    (:mod:`repro.circuit.linsolve`): the backend's DC system stamps the
    linear devices and the gmin diagonal once, then each iteration
    re-stamps only the nonlinear devices and solves — densely via LAPACK
    or sparsely via a pattern-cached ``splu`` factorization.
    """
    x = x0.copy()
    system = backend.dc_system(circuit, layout, gmin)
    for iteration in range(1, MAX_ITERATIONS + 1):
        x_new = system.solve_at(x)
        if not np.all(np.isfinite(x_new)):
            raise ConvergenceError(
                f"non-finite Newton update in circuit {circuit.title!r}")
        delta = x_new - x
        # Damp only the node-voltage part; branch currents may legitimately
        # jump by large amounts.
        nv = layout.n_nodes
        step = np.max(np.abs(delta[:nv])) if nv else 0.0
        if step > MAX_STEP_V:
            x = x + delta * (MAX_STEP_V / step)
            continue
        x = x_new
        if nv == 0:
            # No node voltages to test: any undamped step is converged
            # (branch-current-only systems are linear in practice).
            return x, iteration
        if step <= ABSTOL_V + RELTOL * np.max(np.abs(x[:nv])):
            return x, iteration
    raise ConvergenceError(
        f"Newton did not converge in {MAX_ITERATIONS} iterations "
        f"(circuit {circuit.title!r}, gmin={gmin:g})")


def _gmin_stepping(circuit: Circuit, layout: MnaLayout,
                   x0: np.ndarray, backend) -> tuple[np.ndarray, int]:
    x = x0.copy()
    total = 0
    for gmin in gmin_schedule():
        x, iters = _newton(circuit, layout, x, gmin, backend)
        total += iters
    return x, total


def _source_stepping(circuit: Circuit, layout: MnaLayout,
                     x0: np.ndarray, backend) -> tuple[np.ndarray, int]:
    sources = [d for d in circuit.devices if isinstance(d, (Vsource, Isource))]
    x = x0.copy()
    total = 0
    saved = [src.scale for src in sources]
    try:
        for scale in SOURCE_SCALES:
            for src in sources:
                src.scale = scale
            x, iters = _newton(circuit, layout, x, GMIN_FINAL, backend)
            total += iters
    finally:
        # Restore the pre-call scales (not a hardcoded 1.0) so a caller
        # that legitimately runs with scaled sources is not clobbered.
        for src, scale in zip(sources, saved):
            src.scale = scale
    return x, total


def solve_dc(circuit: Circuit, temp_c: float = 27.0,
             x0: Optional[np.ndarray] = None,
             backend=None, effort: Optional["DcEffort"] = None) -> DCResult:
    """Find the DC operating point of ``circuit`` at ``temp_c`` Celsius.

    ``x0`` seeds a leading "newton-warm" stage (e.g. with the solution of
    a nearby statistical sample), which dramatically speeds up
    Monte-Carlo loops; the cold strategy chain below it is unchanged, so
    a bad guess costs iterations but never the solution.

    ``backend`` selects the linear-solver backend (``None``/``"auto"``/
    ``"dense"``/``"sparse"`` or a :mod:`repro.circuit.linsolve` instance);
    the default picks by node count and keeps small circuits on the
    dense path bit-identically.

    ``effort`` is an optional :class:`DcEffort` counter bundle: the
    winning strategy label is counted on success, ``"failed"`` when the
    whole chain gives up.

    Raises :class:`ConvergenceError` if all homotopy strategies fail.
    """
    layout = circuit.layout()
    backend = resolve_backend(backend, layout.n_nodes)
    for dev in circuit.devices:
        dev.prepare(temp_c)

    strategies = []
    if x0 is not None and len(x0) == layout.size \
            and np.all(np.isfinite(x0)):
        warm = np.asarray(x0, dtype=float).copy()
        strategies.append(
            ("newton-warm", lambda: _newton(circuit, layout, warm,
                                            GMIN_FINAL, backend)))
    strategies += [
        ("newton", lambda: _newton(circuit, layout,
                                   np.zeros(layout.size), GMIN_FINAL,
                                   backend)),
        ("gmin-stepping", lambda: _gmin_stepping(circuit, layout,
                                                 np.zeros(layout.size),
                                                 backend)),
        ("source-stepping", lambda: _source_stepping(circuit, layout,
                                                     np.zeros(layout.size),
                                                     backend)),
    ]
    last_error: Optional[Exception] = None
    for label, run in strategies:
        try:
            x, iterations = run()
            if effort is not None:
                effort.count(label)
            return DCResult(circuit, layout, x, temp_c, iterations, label)
        except ConvergenceError as exc:
            last_error = exc
    if effort is not None:
        effort.count("failed")
    raise ConvergenceError(
        f"all DC strategies failed for circuit {circuit.title!r}: "
        f"{last_error}")


class DcEffort:
    """Per-strategy DC solve counters, additive across pool workers.

    One counter per homotopy strategy label (``newton-warm`` / ``newton``
    / ``gmin-stepping`` / ``source-stepping``) plus ``failed`` for chains
    that exhaust every stage.  :func:`solve_dc` increments the winning
    label when handed an instance, and the batched engine increments the
    same labels for lockstep-solved samples, so the counters stay exact
    regardless of which path ran a sample.  The counter API mirrors
    :class:`WarmStartCache` (``stats``/``absorb``/``counter_delta``) so
    the run telemetry can fold deltas through pool workers and shard
    merges identically.
    """

    COUNTER_KEYS = ("newton-warm", "newton", "gmin-stepping",
                    "source-stepping", "failed")

    def __init__(self):
        self._counts: Dict[str, int] = {key: 0 for key in self.COUNTER_KEYS}

    def count(self, label: str, n: int = 1) -> None:
        """Record ``n`` DC solves settled by strategy ``label``."""
        self._counts[label] = self._counts.get(label, 0) + int(n)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for telemetry (additive across workers)."""
        return dict(self._counts)

    def absorb(self, counters: Dict[str, int]) -> None:
        """Fold counter deltas from another instance (a pool worker's)."""
        for key, value in counters.items():
            self._counts[key] = self._counts.get(key, 0) + int(value)

    @classmethod
    def counter_delta(cls, after: Dict[str, int],
                      before: Dict[str, int]) -> Dict[str, int]:
        """Monotone-counter difference of two :meth:`stats` snapshots."""
        keys = set(after) | set(before)
        return {key: int(after.get(key, 0)) - int(before.get(key, 0))
                for key in keys}

    def clear(self) -> None:
        self._counts = {key: 0 for key in self.COUNTER_KEYS}


class WarmStartCache:
    """Bounded FIFO store of DC anchor solutions, keyed by quantized
    ``(d, theta)`` cells.

    A key maps to the solved ``x`` vector of its cell's *representative*
    point, or to ``None`` when that solve failed (negative caching, so a
    dead cell is not re-attempted on every sample).  Entries are evicted
    oldest-first once ``maxsize`` is reached; anchors are cheap to
    recompute, so no LRU bookkeeping is justified on this hot path.

    A second, smaller store holds *chain* anchors: cold-solved
    representatives of **coarser** quantization cells, used to seed a new
    fine cell's representative solve instead of cold-starting it (the
    ROADMAP "anchor-of-anchor" chain).  Chain anchors are keyed by a
    deterministic function of the fine key alone — never by solve
    history — so every anchor remains a pure function of its key and
    pooled/serial evaluation stay bit-identical.  Counters
    (``hits``/``misses``/``chain_seeds``/``chain_solves``/``evictions``)
    feed the run telemetry (:meth:`stats`).
    """

    _MISSING = object()

    def __init__(self, maxsize: int = 256, chain_maxsize: int = 64):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if chain_maxsize < 1:
            raise ValueError(
                f"chain_maxsize must be >= 1, got {chain_maxsize}")
        self.maxsize = maxsize
        self.chain_maxsize = chain_maxsize
        self.hits = 0
        self.misses = 0
        #: fine-cell representative solves seeded from a chain anchor
        self.chain_seeds = 0
        #: coarse-cell (chain) representatives cold-solved
        self.chain_solves = 0
        #: entries dropped from either store by the FIFO bound
        self.evictions = 0
        self._data: Dict[tuple, Optional[np.ndarray]] = {}
        self._chain: Dict[tuple, Optional[np.ndarray]] = {}

    def lookup(self, key: tuple):
        """The cached anchor (may be None for a failed cell), or the
        :data:`WarmStartCache._MISSING` sentinel when unknown."""
        value = self._data.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def store(self, key: tuple, x) -> None:
        """Cache an anchor: ``None`` (failed cell), an ``x`` vector, or a
        tuple of per-cell artifacts (solution, sensitivities, hints...).
        Arrays are copied so callers cannot mutate cached state."""
        if key not in self._data and len(self._data) >= self.maxsize:
            self._data.pop(next(iter(self._data)))
            self.evictions += 1
        if x is None:
            value = None
        elif isinstance(x, tuple):
            value = tuple(np.array(part, dtype=float, copy=True)
                          if isinstance(part, np.ndarray) else part
                          for part in x)
        else:
            value = np.asarray(x, dtype=float).copy()
        self._data[key] = value

    def lookup_chain(self, key: tuple):
        """The cached chain anchor ``x`` (``None`` for a failed coarse
        cell), or :data:`WarmStartCache._MISSING` when unknown.  Chain
        lookups do not touch the hit/miss counters — their effectiveness
        is measured by ``chain_seeds`` vs ``chain_solves``."""
        return self._chain.get(key, self._MISSING)

    def store_chain(self, key: tuple, x) -> None:
        """Cache a coarse-cell chain anchor (``x`` vector or ``None``)."""
        if key not in self._chain and len(self._chain) >= self.chain_maxsize:
            self._chain.pop(next(iter(self._chain)))
            self.evictions += 1
        self._chain[key] = None if x is None \
            else np.asarray(x, dtype=float).copy()

    #: monotone counters (deltas of these fold additively across pool
    #: workers; the ``entries``/``chain_entries`` gauges do not)
    COUNTER_KEYS = ("hits", "misses", "chain_seeds", "chain_solves",
                    "evictions")

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for telemetry (additive across workers)."""
        return {"hits": self.hits, "misses": self.misses,
                "chain_seeds": self.chain_seeds,
                "chain_solves": self.chain_solves,
                "evictions": self.evictions,
                "entries": len(self._data),
                "chain_entries": len(self._chain)}

    def absorb(self, counters: Dict[str, int]) -> None:
        """Fold counter deltas from another cache (a pool worker's) into
        this one; gauges in ``counters`` are ignored."""
        for key in self.COUNTER_KEYS:
            setattr(self, key, getattr(self, key)
                    + int(counters.get(key, 0)))

    @classmethod
    def counter_delta(cls, after: Dict[str, int],
                      before: Dict[str, int]) -> Dict[str, int]:
        """Monotone-counter difference of two :meth:`stats` snapshots."""
        return {key: int(after.get(key, 0)) - int(before.get(key, 0))
                for key in cls.COUNTER_KEYS}

    def clear(self) -> None:
        self._data.clear()
        self._chain.clear()

    def __len__(self) -> int:
        return len(self._data)
