"""Circuit device library: stamps for the MNA formulation.

Every device knows how to *stamp* itself into the modified-nodal-analysis
(MNA) matrix for the three analyses this package supports:

* ``stamp_dc``   — large-signal companion model at a candidate solution
  ``x`` (Newton iteration),
* ``stamp_ac``   — complex small-signal admittance at angular frequency
  ``omega`` around the stored operating point,
* ``stamp_tran`` — backward-Euler companion model for one time step.

The stamping target is a :class:`Stamper`, a thin wrapper over a dense
matrix/vector pair that ignores the ground index ``-1``.  Devices never see
global node numbering directly; the solver hands them a resolved index list
in terminal order plus their branch-current indices.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import NetlistError
from .mos import MosEval, MosModel, evaluate_nmos, intrinsic_capacitances


class Stamper:
    """Dense MNA matrix/right-hand-side accumulator.

    Row/column index ``-1`` denotes the ground node and is silently
    discarded, which keeps device stamping code free of ground special
    cases.
    """

    def __init__(self, size: int, dtype=float):
        self.size = size
        self.matrix = np.zeros((size, size), dtype=dtype)
        self.rhs = np.zeros(size, dtype=dtype)

    def add(self, row: int, col: int, value) -> None:
        """Accumulate ``value`` into ``matrix[row, col]`` unless grounded."""
        if row >= 0 and col >= 0:
            self.matrix[row, col] += value

    def add_rhs(self, row: int, value) -> None:
        """Accumulate ``value`` into ``rhs[row]`` unless grounded."""
        if row >= 0:
            self.rhs[row] += value

    def add_conductance(self, a: int, b: int, g) -> None:
        """Stamp a two-terminal conductance ``g`` between nodes ``a``/``b``."""
        self.add(a, a, g)
        self.add(b, b, g)
        self.add(a, b, -g)
        self.add(b, a, -g)


def _voltage(x: np.ndarray, index: int) -> float:
    """Solution-vector lookup treating ground (-1) as 0 V."""
    return 0.0 if index < 0 else float(x[index])


class Device:
    """Base class for all circuit elements.

    Attributes
    ----------
    name:
        Unique instance name within a circuit (e.g. ``"M1"``).
    nodes:
        Terminal node names, in the device's canonical terminal order.
    n_branches:
        Number of extra MNA unknowns (branch currents) this device needs.
    """

    n_branches = 0
    linear = True

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise NetlistError("device name must be non-empty")
        self.name = name
        self.nodes = tuple(str(n) for n in nodes)

    # -- stamping interface ------------------------------------------------
    def stamp_dc(self, st: Stamper, x: np.ndarray, nodes: Sequence[int],
                 branches: Sequence[int]) -> None:
        raise NotImplementedError

    def stamp_ac(self, st: Stamper, omega: float, nodes: Sequence[int],
                 branches: Sequence[int], op: Optional[dict]) -> None:
        """Default AC behaviour: same stamp as DC for linear devices."""
        self.stamp_dc(st, np.zeros(0), nodes, branches)

    def stamp_ac_parts(self, st_g: Stamper, st_b: Stamper,
                       nodes: Sequence[int], branches: Sequence[int],
                       op: Optional[dict]) -> None:
        """Frequency-split AC stamp: the small-signal system is
        ``(G + j*omega*B) x = rhs`` with both G and B frequency-independent,
        so the AC engine assembles them once per operating point and solves
        cheaply per frequency.  ``st_g`` receives the conductance part and
        the AC source values, ``st_b`` the susceptance-slope part
        (capacitances, inductances).  Default: resistive devices stamp
        their DC pattern into G only."""
        self.stamp_dc(st_g, np.zeros(0), nodes, branches)

    def stamp_tran(self, st: Stamper, x: np.ndarray, nodes: Sequence[int],
                   branches: Sequence[int], state: dict, h: float,
                   t: float) -> None:
        """Default transient behaviour: identical to DC (resistive)."""
        self.stamp_dc(st, x, nodes, branches)

    # -- analysis support ---------------------------------------------------
    def prepare(self, temp_c: float) -> None:
        """Hook called once before a DC solve; temperature-dependent devices
        refresh their cached model here."""

    def operating_point(self, x: np.ndarray, nodes: Sequence[int],
                        branches: Sequence[int]) -> Optional[dict]:
        """Return an operating-point record for this device, or ``None`` for
        devices without interesting bias information."""
        return None

    def init_state(self, x: np.ndarray, nodes: Sequence[int],
                   branches: Sequence[int], state: dict) -> None:
        """Initialize transient integration state from the DC solution."""

    def update_state(self, x: np.ndarray, nodes: Sequence[int],
                     branches: Sequence[int], state: dict) -> None:
        """Commit the accepted time-step solution into the state dict."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.nodes}>"


class Resistor(Device):
    """Linear resistor between two nodes."""

    def __init__(self, name: str, a: str, b: str, resistance: float):
        super().__init__(name, (a, b))
        if resistance <= 0:
            raise NetlistError(f"resistor {name}: resistance must be positive")
        self.resistance = float(resistance)

    def stamp_dc(self, st, x, nodes, branches):
        st.add_conductance(nodes[0], nodes[1], 1.0 / self.resistance)

    def operating_point(self, x, nodes, branches):
        v = _voltage(x, nodes[0]) - _voltage(x, nodes[1])
        i = v / self.resistance
        return {"v": v, "i": i, "power": v * i}


class Capacitor(Device):
    """Linear capacitor: open at DC, ``j*omega*C`` at AC, backward-Euler
    companion in transient."""

    def __init__(self, name: str, a: str, b: str, capacitance: float,
                 ic: Optional[float] = None):
        super().__init__(name, (a, b))
        if capacitance < 0:
            raise NetlistError(f"capacitor {name}: capacitance must be >= 0")
        self.capacitance = float(capacitance)
        self.ic = ic  # optional initial voltage for transient

    def stamp_dc(self, st, x, nodes, branches):
        pass  # open circuit

    def stamp_ac(self, st, omega, nodes, branches, op):
        st.add_conductance(nodes[0], nodes[1], 1j * omega * self.capacitance)

    def stamp_ac_parts(self, st_g, st_b, nodes, branches, op):
        st_b.add_conductance(nodes[0], nodes[1], self.capacitance)

    def init_state(self, x, nodes, branches, state):
        if self.ic is not None:
            state["v"] = float(self.ic)
        else:
            state["v"] = _voltage(x, nodes[0]) - _voltage(x, nodes[1])

    def stamp_tran(self, st, x, nodes, branches, state, h, t):
        geq = self.capacitance / h
        ieq = geq * state["v"]
        st.add_conductance(nodes[0], nodes[1], geq)
        st.add_rhs(nodes[0], ieq)
        st.add_rhs(nodes[1], -ieq)

    def update_state(self, x, nodes, branches, state):
        state["v"] = _voltage(x, nodes[0]) - _voltage(x, nodes[1])


class Inductor(Device):
    """Linear inductor: a short at DC (0 V branch), ``j*omega*L`` at AC.

    The huge-inductor idiom (``L ~ 1 GH``) is used by the opamp testbenches
    to close the feedback loop at DC while leaving it open at all analysis
    frequencies — see :mod:`repro.evaluation.testbench`.
    """

    n_branches = 1

    def __init__(self, name: str, a: str, b: str, inductance: float):
        super().__init__(name, (a, b))
        if inductance <= 0:
            raise NetlistError(f"inductor {name}: inductance must be positive")
        self.inductance = float(inductance)

    def _stamp_branch(self, st, nodes, branches):
        j = branches[0]
        st.add(nodes[0], j, 1.0)
        st.add(nodes[1], j, -1.0)
        st.add(j, nodes[0], 1.0)
        st.add(j, nodes[1], -1.0)

    def stamp_dc(self, st, x, nodes, branches):
        self._stamp_branch(st, nodes, branches)  # v_a - v_b = 0

    def stamp_ac(self, st, omega, nodes, branches, op):
        self._stamp_branch(st, nodes, branches)
        st.add(branches[0], branches[0], -1j * omega * self.inductance)

    def stamp_ac_parts(self, st_g, st_b, nodes, branches, op):
        self._stamp_branch(st_g, nodes, branches)
        st_b.add(branches[0], branches[0], -self.inductance)

    def init_state(self, x, nodes, branches, state):
        state["i"] = _voltage(x, branches[0])

    def stamp_tran(self, st, x, nodes, branches, state, h, t):
        # v = L * di/dt  ->  v - (L/h) i = -(L/h) i_prev
        self._stamp_branch(st, nodes, branches)
        req = self.inductance / h
        st.add(branches[0], branches[0], -req)
        st.add_rhs(branches[0], -req * state["i"])

    def update_state(self, x, nodes, branches, state):
        state["i"] = _voltage(x, branches[0])


class Vsource(Device):
    """Independent voltage source with DC value, AC magnitude and an
    optional transient waveform ``waveform(t) -> volts``."""

    n_branches = 1

    def __init__(self, name: str, p: str, n: str, dc: float = 0.0,
                 ac: complex = 0.0,
                 waveform: Optional[Callable[[float], float]] = None):
        super().__init__(name, (p, n))
        self.dc = float(dc)
        self.ac = complex(ac)
        self.waveform = waveform
        #: homotopy scale applied by the source-stepping solver
        self.scale = 1.0

    def _stamp_branch(self, st, nodes, branches, value):
        j = branches[0]
        st.add(nodes[0], j, 1.0)
        st.add(nodes[1], j, -1.0)
        st.add(j, nodes[0], 1.0)
        st.add(j, nodes[1], -1.0)
        st.add_rhs(j, value)

    def stamp_dc(self, st, x, nodes, branches):
        self._stamp_branch(st, nodes, branches, self.dc * self.scale)

    def stamp_ac(self, st, omega, nodes, branches, op):
        self._stamp_branch(st, nodes, branches, self.ac)

    def stamp_ac_parts(self, st_g, st_b, nodes, branches, op):
        self._stamp_branch(st_g, nodes, branches, self.ac)

    def stamp_tran(self, st, x, nodes, branches, state, h, t):
        value = self.waveform(t) if self.waveform is not None else self.dc
        self._stamp_branch(st, nodes, branches, value)


class Isource(Device):
    """Independent current source; positive current flows from ``p`` through
    the source to ``n`` (i.e. it is pulled out of node ``p``)."""

    def __init__(self, name: str, p: str, n: str, dc: float = 0.0,
                 ac: complex = 0.0,
                 waveform: Optional[Callable[[float], float]] = None):
        super().__init__(name, (p, n))
        self.dc = float(dc)
        self.ac = complex(ac)
        self.waveform = waveform
        self.scale = 1.0

    def _stamp(self, st, nodes, value):
        st.add_rhs(nodes[0], -value)
        st.add_rhs(nodes[1], value)

    def stamp_dc(self, st, x, nodes, branches):
        self._stamp(st, nodes, self.dc * self.scale)

    def stamp_ac(self, st, omega, nodes, branches, op):
        self._stamp(st, nodes, self.ac)

    def stamp_ac_parts(self, st_g, st_b, nodes, branches, op):
        self._stamp(st_g, nodes, self.ac)

    def stamp_tran(self, st, x, nodes, branches, state, h, t):
        value = self.waveform(t) if self.waveform is not None else self.dc
        self._stamp(st, nodes, value)


class Vcvs(Device):
    """Voltage-controlled voltage source (SPICE ``E`` element):
    ``v(p) - v(n) = gain * (v(cp) - v(cn))``."""

    n_branches = 1

    def __init__(self, name: str, p: str, n: str, cp: str, cn: str,
                 gain: float):
        super().__init__(name, (p, n, cp, cn))
        self.gain = float(gain)

    def stamp_dc(self, st, x, nodes, branches):
        p, n, cp, cn = nodes
        j = branches[0]
        st.add(p, j, 1.0)
        st.add(n, j, -1.0)
        st.add(j, p, 1.0)
        st.add(j, n, -1.0)
        st.add(j, cp, -self.gain)
        st.add(j, cn, self.gain)


class Vccs(Device):
    """Voltage-controlled current source (SPICE ``G`` element): a current
    ``gm * (v(cp) - v(cn))`` flows from ``p`` through the source to ``n``."""

    def __init__(self, name: str, p: str, n: str, cp: str, cn: str,
                 gm: float):
        super().__init__(name, (p, n, cp, cn))
        self.gm = float(gm)

    def stamp_dc(self, st, x, nodes, branches):
        p, n, cp, cn = nodes
        st.add(p, cp, self.gm)
        st.add(p, cn, -self.gm)
        st.add(n, cp, -self.gm)
        st.add(n, cn, self.gm)


class Mosfet(Device):
    """Four-terminal MOS transistor (drain, gate, source, bulk).

    Large-signal behaviour comes from :func:`repro.circuit.mos.evaluate_nmos`
    through polarity reflection (PMOS) and automatic source/drain swap for
    reverse bias.  Statistical perturbations enter through ``delta_vto``
    (threshold shift, in the direction that weakens the device for either
    polarity) and ``beta_factor`` (multiplicative gain-factor variation).
    """

    linear = False

    def __init__(self, name: str, d: str, g: str, s: str, b: str,
                 model: MosModel, w: float, l: float, m: int = 1,
                 delta_vto: float = 0.0, beta_factor: float = 1.0):
        super().__init__(name, (d, g, s, b))
        if w <= 0 or l <= 0:
            raise NetlistError(f"mosfet {name}: W and L must be positive")
        if m < 1:
            raise NetlistError(f"mosfet {name}: multiplier must be >= 1")
        self.model = model
        self.w = float(w)
        self.l = float(l)
        self.m = int(m)
        self.delta_vto = float(delta_vto)
        self.beta_factor = float(beta_factor)
        self._model_t = model  # refreshed by prepare()

    def prepare(self, temp_c: float) -> None:
        self._model_t = self.model.at_temperature(temp_c).perturbed(
            self.delta_vto, self.beta_factor)

    def _evaluate(self, x: np.ndarray, nodes: Sequence[int]
                  ) -> tuple[MosEval, bool, float, float, float]:
        """Evaluate the reflected/swapped model at the solution ``x``.

        Returns ``(eval, swapped, vgs, vds, vbs)`` where the voltages are
        the *polarity-reflected* terminal voltages actually fed to the NMOS
        equations.
        """
        model = self._model_t
        pol = model.polarity
        vd = _voltage(x, nodes[0])
        vg = _voltage(x, nodes[1])
        vs = _voltage(x, nodes[2])
        vb = _voltage(x, nodes[3])
        vds = pol * (vd - vs)
        swapped = vds < 0.0
        if swapped:
            vd, vs = vs, vd
            vds = -vds
        vgs = pol * (vg - vs)
        vbs = pol * (vb - vs)
        ev = evaluate_nmos(model, self.w * self.m, self.l, vgs, vds, vbs)
        return ev, swapped, vgs, vds, vbs

    def stamp_dc(self, st, x, nodes, branches):
        ev, swapped, vgs, vds, vbs = self._evaluate(x, nodes)
        nd, ng, ns, nb = nodes
        if swapped:
            nd, ns = ns, nd
        gm, gds, gmb = ev.gm, ev.gds, ev.gmb
        gsum = gm + gds + gmb
        # Current flowing into the (effective, real-frame) drain terminal.
        # Polarity reflection cancels in the conductances (pol^2 = 1) but
        # not in the equivalent current.
        pol = self._model_t.polarity
        vd_r = _voltage(x, nd)
        vg_r = _voltage(x, ng)
        vs_r = _voltage(x, ns)
        vb_r = _voltage(x, nb)
        i_d = pol * ev.ids
        ieq = i_d - (gm * vg_r + gds * vd_r + gmb * vb_r - gsum * vs_r)
        st.add(nd, ng, gm)
        st.add(nd, nd, gds)
        st.add(nd, nb, gmb)
        st.add(nd, ns, -gsum)
        st.add(ns, ng, -gm)
        st.add(ns, nd, -gds)
        st.add(ns, nb, -gmb)
        st.add(ns, ns, gsum)
        st.add_rhs(nd, -ieq)
        st.add_rhs(ns, ieq)

    def stamp_ac(self, st, omega, nodes, branches, op):
        if op is None:
            raise NetlistError(
                f"mosfet {self.name}: AC stamp requires an operating point")
        nd, ng, ns, nb = nodes
        if op["swapped"]:
            nd, ns = ns, nd
        gm, gds, gmb = op["gm"], op["gds"], op["gmb"]
        gsum = gm + gds + gmb
        st.add(nd, ng, gm)
        st.add(nd, nd, gds)
        st.add(nd, nb, gmb)
        st.add(nd, ns, -gsum)
        st.add(ns, ng, -gm)
        st.add(ns, nd, -gds)
        st.add(ns, nb, -gmb)
        st.add(ns, ns, gsum)
        jw = 1j * omega
        st.add_conductance(ng, ns, jw * op["cgs"])
        st.add_conductance(ng, nd, jw * op["cgd"])
        st.add_conductance(nd, nb, jw * op["cdb"])
        st.add_conductance(ns, nb, jw * op["csb"])

    def stamp_ac_parts(self, st_g, st_b, nodes, branches, op):
        if op is None:
            raise NetlistError(
                f"mosfet {self.name}: AC stamp requires an operating point")
        nd, ng, ns, nb = nodes
        if op["swapped"]:
            nd, ns = ns, nd
        gm, gds, gmb = op["gm"], op["gds"], op["gmb"]
        gsum = gm + gds + gmb
        st_g.add(nd, ng, gm)
        st_g.add(nd, nd, gds)
        st_g.add(nd, nb, gmb)
        st_g.add(nd, ns, -gsum)
        st_g.add(ns, ng, -gm)
        st_g.add(ns, nd, -gds)
        st_g.add(ns, nb, -gmb)
        st_g.add(ns, ns, gsum)
        st_b.add_conductance(ng, ns, op["cgs"])
        st_b.add_conductance(ng, nd, op["cgd"])
        st_b.add_conductance(nd, nb, op["cdb"])
        st_b.add_conductance(ns, nb, op["csb"])

    def operating_point(self, x, nodes, branches):
        ev, swapped, vgs, vds, vbs = self._evaluate(x, nodes)
        cgs, cgd, cdb, csb = intrinsic_capacitances(
            self._model_t, self.w * self.m, self.l, ev.region)
        return {
            "ids": ev.ids,
            "gm": ev.gm,
            "gds": ev.gds,
            "gmb": ev.gmb,
            "vgs": vgs,
            "vds": vds,
            "vbs": vbs,
            "vth": ev.vth,
            "vdsat": ev.vdsat,
            "vov": ev.vov,
            "region": ev.region,
            "swapped": swapped,
            "cgs": cgs,
            "cgd": cgd,
            "cdb": cdb,
            "csb": csb,
            "sat_margin": vds - ev.vdsat,
        }

    def stamp_tran(self, st, x, nodes, branches, state, h, t):
        # Nonlinear resistive part; intrinsic capacitances are attached by
        # the transient engine as fixed companions evaluated at t = 0.
        self.stamp_dc(st, x, nodes, branches)
