"""Sample-batched MNA evaluation (structure-of-arrays over Monte-Carlo rows).

A verification Monte-Carlo evaluates one fixed topology at many
statistical samples: every sample's circuit differs from its neighbours
only in a handful of *values* — per-device threshold shifts, gain-factor
scalings and the global sheet-resistance factor — never in structure.
The serial path nevertheless rebuilds the netlist, re-stamps the MNA
system and re-runs the scalar device model per sample.

This module exploits the shared structure.  :class:`SampleBatchPlan`

* builds the circuit **twice** — once at the nominal statistical point
  (the *prototype*) and once at a synthetic *probe* point with distinct
  per-device perturbations — and verifies by comparison that the builder
  maps statistical variations the way the batch engine assumes (resistors
  scale linearly with the resistance factor, MOSFETs track their own
  ``delta_vto``/``beta_factor``, everything else is invariant).  Any
  builder that deviates raises :class:`BatchUnsupported` and the caller
  falls back to the serial path — the probe can only *disable* batching,
  never corrupt results;
* captures the prototype's exact stamp-call sequences (DC base, AC
  ``(G, B)``) as triplet descriptors whose values are per-sample arrays;
* runs the **full lockstep DC homotopy chain** over all samples,
  evaluating every MOSFET once per iteration for the whole active batch
  (:func:`repro.circuit.mos.evaluate_nmos_batch`) and replicating the
  scalar solver's damping/convergence/fault semantics per sample.
  Samples that leave the warm-Newton happy path (non-finite update or
  iteration cap) re-enter the next homotopy stage in lockstep — cold
  Newton from zero, gmin stepping on the shared schedule (gmin enters
  only the stamped diagonal), source stepping on the shared ramp (the
  scale enters only the re-accumulated rhs) — exactly mirroring
  ``dc.solve_dc``'s strategy chain.  Only a singular matrix or an
  exhausted chain hands a sample back for the serial fallback, whose
  identical failure reproduces the serial error classification exactly.

Parity contract: every arithmetic step mirrors the serial code
operation-for-operation (same accumulation order, same association, same
library calls), so batched results are **bitwise identical** to the
serial per-sample loop — not merely close.  The test suite asserts exact
equality.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SingularMatrixError
from .ac import AcSystem
from .dc import (ABSTOL_V, DCResult, GMIN_FINAL, MAX_ITERATIONS, MAX_STEP_V,
                 RELTOL, SOURCE_SCALES, gmin_schedule)
from .devices import (Capacitor, Inductor, Isource, Mosfet, Resistor, Vcvs,
                      Vccs, Vsource)
from .linsolve import (DenseAcEngine, SparseAcEngine, SparsePattern,
                       TripletStamper, resolve_backend)
from .mos import (REGION_NAMES, evaluate_nmos_batch,
                  evaluate_nmos_stacked, intrinsic_capacitances_batch)
from .netlist import Circuit

#: Resistance factor of the probe build; a power of two, so a builder
#: computing ``base * factor`` yields exactly ``2 * (base * 1.0)`` and the
#: linearity check is an exact float comparison.
PROBE_RESISTANCE_FACTOR = 2.0


class _RhsRecordingStamper(TripletStamper):
    """Triplet stamper that additionally records every rhs add as
    ``(row, value, scaled)``, in call order.

    The source-stepping homotopy re-accumulates the linear rhs per scale
    stage: each recorded source add contributes ``value * scale`` (the
    bitwise equal of the serial ``±(dc * scale)`` stamp, since IEEE
    multiplication is sign-magnitude exact) while non-source adds are
    kept verbatim — never a post-sum scaling, which would associate
    differently.
    """

    def __init__(self, size: int):
        super().__init__(size)
        self.rhs_records: List[Tuple[int, float, bool]] = []
        #: set by the capture loop: is the device being stamped an
        #: independent source (its rhs adds carry the homotopy scale)?
        self.rhs_scaled = False

    def add_rhs(self, row: int, value) -> None:
        if row >= 0:
            self.rhs_records.append((row, float(value), self.rhs_scaled))
        super().add_rhs(row, value)


class BatchUnsupported(Exception):
    """Internal signal: this build cannot be batched; use the serial path.

    Deliberately *not* a :class:`~repro.errors.ReproError` — it never
    reaches user code or the fault policy; the evaluation layer catches
    it and silently falls back.
    """


def probe_maps(proto: Circuit) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Distinct per-transistor probe perturbations for ``proto``.

    Each MOSFET gets its *own* ``delta_vto``/``beta_factor`` value, so a
    builder that cross-wires device perturbations (device A built with
    device B's variation) produces a detectable mismatch instead of a
    silently wrong batch.
    """
    dvto: Dict[str, float] = {}
    beta: Dict[str, float] = {}
    index = 0
    for dev in proto.devices:
        if isinstance(dev, Mosfet):
            index += 1
            dvto[dev.name] = 0.01 * index
            beta[dev.name] = 1.0 + 0.125 * index
    return dvto, beta


def _col(x: np.ndarray, index: int) -> np.ndarray:
    """Per-sample voltage column, treating ground (-1) as 0 V."""
    if index < 0:
        return np.zeros(x.shape[0])
    return x[:, index]


def _mos_adds(nd: int, ng: int, ns: int, nb: int
              ) -> Tuple[List[Tuple[int, int, int, float]],
                         List[Tuple[int, int]]]:
    """The 8 Jacobian adds + 2 rhs adds of ``Mosfet.stamp_dc`` /
    ``stamp_ac_parts`` (G part) for one drain/source orientation, with
    the ground skips applied.  Quantity indices: 0=gm 1=gds 2=gmb 3=gsum;
    rhs sign multiplies ``ieq``."""
    adds = []
    for row, col, qty, sign in (
            (nd, ng, 0, 1.0), (nd, nd, 1, 1.0), (nd, nb, 2, 1.0),
            (nd, ns, 3, -1.0), (ns, ng, 0, -1.0), (ns, nd, 1, -1.0),
            (ns, nb, 2, -1.0), (ns, ns, 3, 1.0)):
        if row >= 0 and col >= 0:
            adds.append((row, col, qty, sign))
    rhs = []
    if nd >= 0:
        rhs.append((nd, -1.0))
    if ns >= 0:
        rhs.append((ns, 1.0))
    return adds, rhs


def _mos_cap_adds(nd: int, ng: int, ns: int, nb: int
                  ) -> List[Tuple[int, int, int, float]]:
    """The B-part adds of ``Mosfet.stamp_ac_parts``: four two-terminal
    capacitances via ``add_conductance``, in call order, ground-skipped.
    Quantity indices: 0=cgs 1=cgd 2=cdb 3=csb."""
    adds = []
    for a, b, qty in ((ng, ns, 0), (ng, nd, 1), (nd, nb, 2), (ns, nb, 3)):
        for row, col, sign in ((a, a, 1.0), (b, b, 1.0),
                               (a, b, -1.0), (b, a, -1.0)):
            if row >= 0 and col >= 0:
                adds.append((row, col, qty, sign))
    return adds


class _MosPlan:
    """Static per-transistor data: reflected model card, effective
    geometry, tracking flags and the stamp descriptors of both
    drain/source orientations."""

    __slots__ = ("name", "index", "nodes", "pol", "model_t", "w_eff", "l",
                 "tracked_vto", "tracked_beta", "cj", "dc_variants",
                 "ac_g_variants", "ac_b_variants", "rhs_variants")

    def __init__(self, index: int, dev: Mosfet, nodes: Sequence[int],
                 temp_c: float, tracked_vto: bool, tracked_beta: bool):
        self.name = dev.name
        self.index = index
        self.nodes = tuple(nodes)
        self.model_t = dev.model.at_temperature(temp_c)
        self.pol = self.model_t.polarity
        self.w_eff = dev.w * dev.m
        self.l = dev.l
        self.tracked_vto = tracked_vto
        self.tracked_beta = tracked_beta
        self.cj = self.model_t.cj * self.w_eff * self.model_t.ldif
        nd, ng, ns, nb = nodes
        self.dc_variants = {}
        self.rhs_variants = {}
        self.ac_g_variants = {}
        self.ac_b_variants = {}
        for swapped in (False, True):
            ed, es = (ns, nd) if swapped else (nd, ns)
            adds, rhs = _mos_adds(ed, ng, es, nb)
            self.dc_variants[swapped] = adds
            self.rhs_variants[swapped] = rhs
            self.ac_g_variants[swapped] = adds
            self.ac_b_variants[swapped] = _mos_cap_adds(ed, ng, es, nb)


class _SigSpec:
    """Assembled stamp plan for one swap signature: concatenated triplet
    index arrays plus gather maps from per-sample quantity matrices."""

    __slots__ = ("rows", "cols", "n_base", "nl_qty", "nl_mos", "nl_sign",
                 "rhs_rows", "rhs_mos", "rhs_sign", "pattern", "n_g",
                 "g_const", "g_res_slots", "g_res_idx", "g_res_sign",
                 "g_qty", "g_mos", "g_sign", "g_mos_slots",
                 "b_const", "b_qty", "b_mos", "b_sign", "b_mos_slots")


def _match_devices(proto: Circuit, probe: Circuit,
                   probe_dvto: Dict[str, float],
                   probe_beta: Dict[str, float],
                   probe_rf: float) -> Tuple[List[Tuple[Mosfet, bool, bool]],
                                             List[Tuple[Resistor, bool]]]:
    """Verify the probe build differs from the prototype exactly as the
    batch model assumes; return (mosfets, resistors) with tracking flags.

    Raises :class:`BatchUnsupported` on any structural or value mismatch.
    """
    if len(proto.devices) != len(probe.devices):
        raise BatchUnsupported("device count differs between builds")
    mosfets: List[Tuple[Mosfet, bool, bool]] = []
    resistors: List[Tuple[Resistor, bool]] = []
    for a, b in zip(proto.devices, probe.devices):
        if type(a) is not type(b) or a.name != b.name or a.nodes != b.nodes:
            raise BatchUnsupported(f"device {a.name!r} differs structurally")
        if isinstance(a, Resistor):
            if b.resistance == probe_rf * a.resistance:
                resistors.append((a, True))
            elif b.resistance == a.resistance:
                resistors.append((a, False))
            else:
                raise BatchUnsupported(
                    f"resistor {a.name!r} is not linear in the "
                    f"resistance factor")
        elif isinstance(a, Mosfet):
            if (a.w != b.w or a.l != b.l or a.m != b.m
                    or a.model != b.model):
                raise BatchUnsupported(f"mosfet {a.name!r} geometry or "
                                       f"model varies with the sample")
            if a.delta_vto != 0.0 or a.beta_factor != 1.0:
                raise BatchUnsupported(
                    f"mosfet {a.name!r} has non-nominal perturbations in "
                    f"the prototype build")
            if b.delta_vto == probe_dvto.get(a.name):
                tracked_vto = True
            elif b.delta_vto == 0.0:
                tracked_vto = False
            else:
                raise BatchUnsupported(
                    f"mosfet {a.name!r} does not track its own delta_vto")
            if b.beta_factor == probe_beta.get(a.name):
                tracked_beta = True
            elif b.beta_factor == 1.0:
                tracked_beta = False
            else:
                raise BatchUnsupported(
                    f"mosfet {a.name!r} does not track its own beta_factor")
            mosfets.append((a, tracked_vto, tracked_beta))
        elif isinstance(a, Capacitor):
            if a.capacitance != b.capacitance or a.ic != b.ic:
                raise BatchUnsupported(f"capacitor {a.name!r} varies")
        elif isinstance(a, Inductor):
            if a.inductance != b.inductance:
                raise BatchUnsupported(f"inductor {a.name!r} varies")
        elif isinstance(a, (Vsource, Isource)):
            if (a.dc != b.dc or a.ac != b.ac or a.waveform is not None
                    or b.waveform is not None or a.scale != 1.0
                    or b.scale != 1.0):
                raise BatchUnsupported(f"source {a.name!r} varies")
        elif isinstance(a, Vcvs):
            if a.gain != b.gain:
                raise BatchUnsupported(f"vcvs {a.name!r} varies")
        elif isinstance(a, Vccs):
            if a.gm != b.gm:
                raise BatchUnsupported(f"vccs {a.name!r} varies")
        else:
            raise BatchUnsupported(
                f"unsupported device type {type(a).__name__} ({a.name!r})")
    if not mosfets:
        raise BatchUnsupported("no transistors; batching is pointless")
    return mosfets, resistors


class _LazyOps(dict):
    """Operating-point record dict materialized on access.

    The serial path computes every device's record when the AC engine is
    assembled; the batched path already holds all quantities as arrays
    and only pays the per-record dict construction for devices the
    extraction actually reads (typically one tail transistor)."""

    def __init__(self, plan: "SampleBatchPlan", k: int):
        super().__init__()
        self._plan = plan
        self._k = k

    def __missing__(self, key):
        record = self._plan._op_record(self._k, key)
        if record is None:
            raise KeyError(key)
        self[key] = record
        return record

    def __contains__(self, key):
        return dict.__contains__(self, key) or key in self._plan._op_kinds

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def _materialize(self):
        for name in self._plan._op_kinds:
            self[name]

    def keys(self):
        self._materialize()
        return dict.keys(self)

    def values(self):
        self._materialize()
        return dict.values(self)

    def items(self):
        self._materialize()
        return dict.items(self)

    def __iter__(self):
        self._materialize()
        return dict.__iter__(self)

    def __len__(self):
        self._materialize()
        return dict.__len__(self)


class _LazySampleCircuit:
    """Per-sample circuit view, materialized on first attribute access.

    ``extract`` implementations that read ``bench.circuit`` (the noise
    analysis re-stamps a fresh AC system from device *values*) must see
    the sample's tracked-resistor resistances, not the prototype's.
    Cloning a big circuit per sample would dominate the batched runtime,
    and most templates never touch ``bench.circuit`` — so the clone is
    built lazily.  Must be consumed before the plan's next
    ``set_samples`` call (the evaluation layer extracts chunk by chunk).
    """

    def __init__(self, plan: "SampleBatchPlan", k: int):
        self._plan = plan
        self._k = k
        self._real: Optional[Circuit] = None

    def _materialize(self) -> Circuit:
        if self._real is None:
            self._real = self._plan._sample_circuit(self._k)
        return self._real

    def __getattr__(self, name):
        return getattr(self._materialize(), name)

    def __len__(self):
        return len(self._materialize())

    def __iter__(self):
        return iter(self._materialize())

    def __contains__(self, name):
        return name in self._materialize()


class SampleBatchPlan:
    """Structure-of-arrays evaluation plan for one ``(d, theta)`` build.

    Lifecycle: construct once per ``(d, theta)`` (verifies the builder
    and captures stamp sequences), then per chunk of samples call
    :meth:`set_samples` followed by :meth:`solve`, and for each converged
    sample :meth:`dc_result` / :meth:`systems` to assemble an injected
    testbench.
    """

    def __init__(self, proto: Circuit, probe: Circuit,
                 probe_dvto: Dict[str, float],
                 probe_beta: Dict[str, float],
                 temp_c: float, linsolve=None):
        self.circuit = proto
        self.temp_c = temp_c
        layout = proto.layout()
        self.layout = layout
        self.backend = resolve_backend(linsolve, layout.n_nodes)
        self.sparse = self.backend.name == "sparse"
        mos_pairs, res_pairs = _match_devices(
            proto, probe, probe_dvto, probe_beta, PROBE_RESISTANCE_FACTOR)

        node_of = {dev.name: nodes for dev, nodes
                   in zip(proto.devices, layout.device_nodes)}
        self.mosfets: List[_MosPlan] = [
            _MosPlan(i, dev, node_of[dev.name], temp_c, tv, tb)
            for i, (dev, tv, tb) in enumerate(mos_pairs)]
        self._mos_index = {mp.name: mp for mp in self.mosfets}
        self.n_mos = len(self.mosfets)
        self._build_mos_stack()
        self.resistors: List[Tuple[Resistor, bool, Tuple[int, int]]] = [
            (dev, tracked, node_of[dev.name])
            for dev, tracked in res_pairs]
        self._res_index = {dev.name: j
                           for j, (dev, _, _) in enumerate(self.resistors)}
        self._op_kinds = {mp.name: ("mos", mp.index) for mp in self.mosfets}
        self._op_kinds.update({dev.name: ("res", j) for j, (dev, _, _)
                               in enumerate(self.resistors)})

        self._capture_dc()
        self._capture_ac()
        self._dc_specs: Dict[bytes, _SigSpec] = {}
        self._ac_specs: Dict[bytes, _SigSpec] = {}
        self.n_samples = 0

    # -- capture ---------------------------------------------------------------
    def _capture_dc(self) -> None:
        """Record the linear-device DC stamp sequence of the prototype,
        marking tracked-resistor value slots, and append the gmin
        diagonal exactly where the serial backends put it."""
        layout = self.layout
        st = _RhsRecordingStamper(layout.size)
        res_slots: List[int] = []
        res_idx: List[int] = []
        res_sign: List[float] = []
        for dev, nodes, branches in zip(self.circuit.devices,
                                        layout.device_nodes,
                                        layout.device_branches):
            if not dev.linear:
                continue
            start = len(st.rows)
            st.rhs_scaled = isinstance(dev, (Vsource, Isource))
            dev.stamp_dc(st, np.zeros(0), nodes, branches)
            if isinstance(dev, Resistor):
                j = self._res_index[dev.name]
                if self.resistors[j][1]:  # tracked
                    g = 1.0 / dev.resistance
                    for slot in range(start, len(st.rows)):
                        res_slots.append(slot)
                        res_idx.append(j)
                        res_sign.append(1.0 if st.vals[slot] == g else -1.0)
        n_linear = len(st.rows)
        st.add_diagonal(layout.n_nodes, GMIN_FINAL)
        self._dc_rows = np.asarray(st.rows, dtype=np.intp)
        self._dc_cols = np.asarray(st.cols, dtype=np.intp)
        self._dc_const = np.asarray(st.vals, dtype=float)
        self._dc_n_linear = n_linear
        self._dc_res_slots = np.asarray(res_slots, dtype=np.intp)
        self._dc_res_idx = np.asarray(res_idx, dtype=np.intp)
        self._dc_res_sign = np.asarray(res_sign, dtype=float)
        self._dc_base_rhs = st.rhs.copy()
        records = st.rhs_records
        self._dc_rhs_rows = np.asarray([r for r, _, _ in records],
                                       dtype=np.intp)
        self._dc_rhs_vals = np.asarray([v for _, v, _ in records],
                                       dtype=float)
        self._dc_rhs_scaled = np.asarray([s for _, _, s in records],
                                         dtype=bool)

    def _capture_ac(self) -> None:
        """Record the AC ``(G, B)`` stamp sequences (device-interleaved,
        as the engines assemble them), the static source rhs and the
        VIP/VIN drive branch indices."""
        layout = self.layout
        st_g = TripletStamper(layout.size, dtype=complex)
        st_b = TripletStamper(layout.size, dtype=complex)
        g_segments: List[tuple] = []  # ("const", start, end) | ("mos", idx)
        b_segments: List[tuple] = []
        g_res: List[Tuple[int, int, float]] = []  # (slot, res_idx, sign)
        for dev, nodes, branches in zip(self.circuit.devices,
                                        layout.device_nodes,
                                        layout.device_branches):
            if isinstance(dev, Mosfet):
                mp = self._mos_index[dev.name]
                g_segments.append(("mos", mp.index))
                b_segments.append(("mos", mp.index))
                continue
            g_start, b_start = len(st_g.rows), len(st_b.rows)
            dev.stamp_ac_parts(st_g, st_b, nodes, branches, None)
            g_segments.append(("const", g_start, len(st_g.rows)))
            b_segments.append(("const", b_start, len(st_b.rows)))
            if isinstance(dev, Resistor):
                j = self._res_index[dev.name]
                if self.resistors[j][1]:
                    g = 1.0 / dev.resistance
                    for slot in range(g_start, len(st_g.rows)):
                        sign = 1.0 if st_g.vals[slot] == g else -1.0
                        g_res.append((slot, j, sign))
        self._ac_g_segments = g_segments
        self._ac_b_segments = b_segments
        self._ac_g_rows = list(st_g.rows)
        self._ac_g_cols = list(st_g.cols)
        self._ac_g_const = list(st_g.vals)
        self._ac_g_res = g_res
        self._ac_b_rows = list(st_b.rows)
        self._ac_b_cols = list(st_b.cols)
        self._ac_b_const = list(st_b.vals)
        self._ac_rhs_static = st_g.rhs + st_b.rhs
        branch_of = {}
        for dev, branches in zip(self.circuit.devices,
                                 layout.device_branches):
            if isinstance(dev, Vsource) and branches:
                branch_of[dev.name] = branches[0]
        if "VIP" not in branch_of or "VIN" not in branch_of:
            raise BatchUnsupported("bench drive sources VIP/VIN not found")
        self._drive_vip = branch_of["VIP"]
        self._drive_vin = branch_of["VIN"]

    # -- per-chunk sample values -----------------------------------------------
    def set_samples(self, pvs: Sequence) -> None:
        """Load one chunk of physical variations (objects with
        ``delta_vto(name)``/``beta_factor(name)``/``resistance_factor``,
        i.e. :class:`repro.statistics.space.PhysicalVariations`)."""
        n = len(pvs)
        self.n_samples = n
        n_mos = self.n_mos
        vto = np.empty((n, n_mos))
        kp = np.empty((n, n_mos))
        for mp in self.mosfets:
            model_t = mp.model_t
            if mp.tracked_vto:
                dv = np.array([pv.delta_vto(mp.name) for pv in pvs])
                vto[:, mp.index] = model_t.vto + mp.pol * dv
            else:
                vto[:, mp.index] = model_t.vto
            if mp.tracked_beta:
                bf = np.array([pv.beta_factor(mp.name) for pv in pvs])
                kp[:, mp.index] = model_t.kp * bf
            else:
                kp[:, mp.index] = model_t.kp
        self._vto = vto
        self._kp = kp
        rf = np.array([pv.resistance_factor for pv in pvs])
        n_res = len(self.resistors)
        res_r = np.empty((n, n_res))
        for j, (dev, tracked, _) in enumerate(self.resistors):
            res_r[:, j] = dev.resistance * rf if tracked else dev.resistance
        self._res_r = res_r
        self._res_g = 1.0 / res_r if n_res else res_r
        base = np.tile(self._dc_const, (n, 1))
        if self._dc_res_slots.size:
            base[:, self._dc_res_slots] = \
                self._dc_res_sign * self._res_g[:, self._dc_res_idx]
        if self.sparse:
            self._dc_base_vals = base
            self._dc_base_mats = None
        else:
            size = self.layout.size
            mats = np.zeros((n, size, size))
            samp = np.arange(n)[:, None]
            np.add.at(mats, (samp, self._dc_rows[None, :self._dc_n_linear],
                             self._dc_cols[None, :self._dc_n_linear]),
                      base[:, :self._dc_n_linear])
            diag = np.arange(self.layout.n_nodes)
            mats[:, diag, diag] += GMIN_FINAL
            self._dc_base_mats = mats
            self._dc_base_vals = base
        self._fin: Optional[dict] = None

    # -- model evaluation -------------------------------------------------------
    def _build_mos_stack(self) -> None:
        """Per-device model-card rows for the stacked transistor
        evaluation: every ``(devices,)`` constant is computed with the
        exact scalar expression the per-device path uses
        (``lambda_ / (l * 1e6)``, ``w / l``), so broadcasting them over
        the sample axis reproduces :func:`evaluate_nmos_batch`
        bit-for-bit."""
        idx = np.zeros((4, self.n_mos), dtype=np.intp)
        gnd = np.zeros((4, self.n_mos), dtype=bool)
        for mp in self.mosfets:
            for t, node in enumerate(mp.nodes):
                if node < 0:
                    gnd[t, mp.index] = True
                else:
                    idx[t, mp.index] = node
        self._mos_node_idx = idx
        self._mos_node_gnd = gnd
        self._mos_pol = np.array([float(mp.pol) for mp in self.mosfets])
        self._mos_phi = np.array([mp.model_t.phi for mp in self.mosfets])
        self._mos_gamma = np.array([mp.model_t.gamma
                                    for mp in self.mosfets])
        self._mos_smoothing = np.array([mp.model_t.smoothing
                                        for mp in self.mosfets])
        self._mos_lam = np.array([mp.model_t.lambda_ / (mp.l * 1e6)
                                  for mp in self.mosfets])
        self._mos_w_over_l = np.array([mp.w_eff / mp.l
                                       for mp in self.mosfets])

    def _eval_mosfets(self, x: np.ndarray) -> dict:
        """Evaluate every transistor at the per-sample solutions ``x``
        (shape ``(k, size)``); returns ``(k, n_mos)`` quantity matrices
        mirroring ``Mosfet._evaluate`` + ``stamp_dc`` bit-for-bit.

        All devices are evaluated in one stacked
        :func:`evaluate_nmos_stacked` call — the per-device model rows
        broadcast over the sample axis, so per element the arithmetic is
        the per-device loop's, minus its Python/ufunc call overhead."""
        if self.n_mos == 0:
            k = x.shape[0]
            out = {name: np.empty((k, 0)) for name in
                   ("gm", "gds", "gmb", "gsum", "ieq", "ids", "vgs",
                    "vds", "vbs", "vth", "vdsat", "vov")}
            out["region"] = np.empty((k, 0), dtype=np.intp)
            out["swapped"] = np.empty((k, 0), dtype=bool)
            return out
        idx, gnd = self._mos_node_idx, self._mos_node_gnd
        volts = x[:, idx]  # (k, 4, n_mos) in d/g/s/b terminal order
        if gnd.any():
            volts = np.where(gnd, 0.0, volts)
        vd0, vg0, vs0, vb0 = volts[:, 0], volts[:, 1], volts[:, 2], \
            volts[:, 3]
        pol = self._mos_pol
        vds = pol * (vd0 - vs0)
        swap = vds < 0.0
        vds_eff = np.where(swap, -vds, vds)
        vs_eff = np.where(swap, vd0, vs0)
        vd_eff = np.where(swap, vs0, vd0)
        vgs = pol * (vg0 - vs_eff)
        vbs = pol * (vb0 - vs_eff)
        ev = evaluate_nmos_stacked(
            self._mos_phi, self._mos_gamma, self._mos_smoothing,
            self._mos_lam, self._mos_w_over_l,
            pol * self._vto, self._kp, vgs, vds_eff, vbs)
        gm, gds, gmb = ev["gm"], ev["gds"], ev["gmb"]
        gsum = gm + gds + gmb
        i_d = pol * ev["ids"]
        ieq = i_d - (gm * vg0 + gds * vd_eff + gmb * vb0
                     - gsum * vs_eff)
        return {
            "gm": gm, "gds": gds, "gmb": gmb, "gsum": gsum, "ieq": ieq,
            "ids": ev["ids"], "vgs": vgs, "vds": vds_eff, "vbs": vbs,
            "vth": ev["vth"], "vdsat": ev["vdsat"], "vov": ev["vov"],
            "region": ev["region"].astype(np.intp, copy=False),
            "swapped": swap,
        }

    def _eval_mosfets_rows(self, x: np.ndarray, rows: np.ndarray) -> dict:
        """Like :meth:`_eval_mosfets` but with the per-sample model-card
        arrays gathered for an arbitrary subset ``rows`` of the chunk."""
        saved_vto, saved_kp, saved_n = self._vto, self._kp, self.n_samples
        try:
            self._vto = saved_vto[rows]
            self._kp = saved_kp[rows]
            self.n_samples = len(rows)
            return self._eval_mosfets(x)
        finally:
            self._vto, self._kp, self.n_samples = saved_vto, saved_kp, saved_n

    # -- signature specs ---------------------------------------------------------
    def _dc_spec(self, key: bytes, swaps: np.ndarray) -> _SigSpec:
        spec = self._dc_specs.get(key)
        if spec is not None:
            return spec
        spec = _SigSpec()
        rows = list(self._dc_rows)
        cols = list(self._dc_cols)
        nl_qty: List[int] = []
        nl_mos: List[int] = []
        nl_sign: List[float] = []
        rhs_rows: List[int] = []
        rhs_mos: List[int] = []
        rhs_sign: List[float] = []
        for mp in self.mosfets:
            variant = bool(swaps[mp.index])
            for row, col, qty, sign in mp.dc_variants[variant]:
                rows.append(row)
                cols.append(col)
                nl_qty.append(qty)
                nl_mos.append(mp.index)
                nl_sign.append(sign)
            for row, sign in mp.rhs_variants[variant]:
                rhs_rows.append(row)
                rhs_mos.append(mp.index)
                rhs_sign.append(sign)
        spec.rows = np.asarray(rows, dtype=np.intp)
        spec.cols = np.asarray(cols, dtype=np.intp)
        spec.n_base = self._dc_rows.size
        spec.nl_qty = np.asarray(nl_qty, dtype=np.intp)
        spec.nl_mos = np.asarray(nl_mos, dtype=np.intp)
        spec.nl_sign = np.asarray(nl_sign, dtype=float)
        spec.rhs_rows = np.asarray(rhs_rows, dtype=np.intp)
        spec.rhs_mos = np.asarray(rhs_mos, dtype=np.intp)
        spec.rhs_sign = np.asarray(rhs_sign, dtype=float)
        if self.sparse:
            spec.pattern = SparsePattern(
                spec.rows.astype(np.int32), spec.cols.astype(np.int32),
                self.layout.size)
        else:
            spec.pattern = None
        self._dc_specs[key] = spec
        return spec

    def _ac_spec(self, key: bytes, swaps: np.ndarray) -> _SigSpec:
        spec = self._ac_specs.get(key)
        if spec is not None:
            return spec
        spec = _SigSpec()
        g_rows: List[int] = []
        g_cols: List[int] = []
        g_const: List[complex] = []
        g_res_slots: List[int] = []
        g_res_idx: List[int] = []
        g_res_sign: List[float] = []
        g_mos_slots: List[int] = []
        g_qty: List[int] = []
        g_mos: List[int] = []
        g_sign: List[float] = []
        res_const = {slot: (j, sign) for slot, j, sign in self._ac_g_res}
        for seg in self._ac_g_segments:
            if seg[0] == "const":
                _, start, end = seg
                for slot in range(start, end):
                    pos = len(g_rows)
                    g_rows.append(self._ac_g_rows[slot])
                    g_cols.append(self._ac_g_cols[slot])
                    g_const.append(self._ac_g_const[slot])
                    if slot in res_const:
                        j, sign = res_const[slot]
                        g_res_slots.append(pos)
                        g_res_idx.append(j)
                        g_res_sign.append(sign)
            else:
                mp = self.mosfets[seg[1]]
                for row, col, qty, sign in \
                        mp.ac_g_variants[bool(swaps[mp.index])]:
                    g_mos_slots.append(len(g_rows))
                    g_rows.append(row)
                    g_cols.append(col)
                    g_const.append(0.0)
                    g_qty.append(qty)
                    g_mos.append(mp.index)
                    g_sign.append(sign)
        # The engines stamp the 1e-12 stabilizer diagonal after all
        # devices (sparse: explicit triplets; dense: a diagonal add).
        for i in range(self.layout.n_nodes):
            g_rows.append(i)
            g_cols.append(i)
            g_const.append(1e-12)
        b_rows: List[int] = []
        b_cols: List[int] = []
        b_const: List[complex] = []
        b_mos_slots: List[int] = []
        b_qty: List[int] = []
        b_mos: List[int] = []
        b_sign: List[float] = []
        for seg in self._ac_b_segments:
            if seg[0] == "const":
                _, start, end = seg
                b_rows.extend(self._ac_b_rows[start:end])
                b_cols.extend(self._ac_b_cols[start:end])
                b_const.extend(self._ac_b_const[start:end])
            else:
                mp = self.mosfets[seg[1]]
                for row, col, qty, sign in \
                        mp.ac_b_variants[bool(swaps[mp.index])]:
                    b_mos_slots.append(len(b_rows))
                    b_rows.append(row)
                    b_cols.append(col)
                    b_const.append(0.0)
                    b_qty.append(qty)
                    b_mos.append(mp.index)
                    b_sign.append(sign)
        spec.n_g = len(g_rows)
        spec.rows = np.asarray(g_rows + b_rows, dtype=np.intp)
        spec.cols = np.asarray(g_cols + b_cols, dtype=np.intp)
        spec.g_const = np.asarray(g_const, dtype=complex)
        spec.g_res_slots = np.asarray(g_res_slots, dtype=np.intp)
        spec.g_res_idx = np.asarray(g_res_idx, dtype=np.intp)
        spec.g_res_sign = np.asarray(g_res_sign, dtype=float)
        spec.g_mos_slots = np.asarray(g_mos_slots, dtype=np.intp)
        spec.g_qty = np.asarray(g_qty, dtype=np.intp)
        spec.g_mos = np.asarray(g_mos, dtype=np.intp)
        spec.g_sign = np.asarray(g_sign, dtype=float)
        spec.b_const = np.asarray(b_const, dtype=complex)
        spec.b_mos_slots = np.asarray(b_mos_slots, dtype=np.intp)
        spec.b_qty = np.asarray(b_qty, dtype=np.intp)
        spec.b_mos = np.asarray(b_mos, dtype=np.intp)
        spec.b_sign = np.asarray(b_sign, dtype=float)
        if self.sparse:
            spec.pattern = SparsePattern(
                spec.rows.astype(np.int32), spec.cols.astype(np.int32),
                self.layout.size)
        else:
            spec.pattern = None
        self._ac_specs[key] = spec
        return spec

    # -- lockstep homotopy chain -------------------------------------------------
    def solve(self, x0s: Optional[np.ndarray]
              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                         List[Optional[str]]]:
        """Lockstep batched DC homotopy over the loaded chunk.

        ``x0s``: per-sample warm starts, shape ``(n, size)``, or ``None``
        to start at the cold Newton stage (the serial ``solve_dc`` with
        no ``x0``).  Samples that fail a stage re-enter the next one in
        lockstep, mirroring ``dc.solve_dc``'s strategy chain exactly:
        warm Newton, cold Newton from zero, gmin stepping on the shared
        :func:`~repro.circuit.dc.gmin_schedule`, source stepping on the
        shared :data:`~repro.circuit.dc.SOURCE_SCALES` ramp.

        Returns ``(x, iterations, ok, strategy)``; ``strategy[k]`` is
        the winning serial strategy label for converged samples and
        ``None`` for samples with ``ok`` False — a singular matrix at
        any stage (the serial chain raises through) or an exhausted
        chain — which must be re-run through the serial path, whose
        identical failure preserves serial-exact error classification.
        """
        n = self.n_samples
        size = self.layout.size
        x_out = np.zeros((n, size))
        iters_out = np.zeros(n, dtype=int)
        strategy: List[Optional[str]] = [None] * n

        def settle(rows: np.ndarray, x: np.ndarray, its: np.ndarray,
                   label: str) -> None:
            x_out[rows] = x
            iters_out[rows] = its
            for r in rows:
                strategy[r] = label

        pending = np.arange(n)
        if x0s is not None:
            x, its, out = self._newton_stage(
                pending, np.array(x0s, dtype=float), GMIN_FINAL,
                self._dc_base_rhs)
            settle(pending[out == 0], x[out == 0], its[out == 0],
                   "newton-warm")
            pending = pending[out == 1]
        if pending.size:
            x, its, out = self._newton_stage(
                pending, np.zeros((pending.size, size)), GMIN_FINAL,
                self._dc_base_rhs)
            settle(pending[out == 0], x[out == 0], its[out == 0], "newton")
            pending = pending[out == 1]
        if pending.size:
            # Gmin stepping: x and the iteration total carry across
            # sub-stages; a sub-stage convergence failure drops the row
            # to source stepping, a singular matrix to the fallback.
            rows = pending
            failed: List[int] = []
            x = np.zeros((rows.size, size))
            total = np.zeros(rows.size, dtype=int)
            for gmin in gmin_schedule():
                x, its, out = self._newton_stage(rows, x, gmin,
                                                 self._dc_base_rhs)
                total += its
                failed.extend(int(r) for r in rows[out == 1])
                keep = out == 0
                if not np.all(keep):
                    rows, x, total = rows[keep], x[keep], total[keep]
                if rows.size == 0:
                    break
            settle(rows, x, total, "gmin-stepping")
            pending = np.asarray(sorted(failed), dtype=np.intp)
        if pending.size:
            # Source stepping: every independent source ramps through the
            # shared scale schedule; the scale enters only the rhs (the
            # Vsource/Isource matrix stamps are scale-free), so one
            # re-accumulated rhs vector per sub-stage serves all rows.
            rows = pending
            x = np.zeros((rows.size, size))
            total = np.zeros(rows.size, dtype=int)
            for scale in SOURCE_SCALES:
                x, its, out = self._newton_stage(rows, x, GMIN_FINAL,
                                                 self._scaled_rhs(scale))
                total += its
                keep = out == 0
                if not np.all(keep):
                    # Any sub-stage failure exhausts the serial chain:
                    # the fallback reproduces the terminal error.
                    rows, x, total = rows[keep], x[keep], total[keep]
                if rows.size == 0:
                    break
            settle(rows, x, total, "source-stepping")
        ok = np.fromiter((label is not None for label in strategy),
                         dtype=bool, count=n)
        self._finalize(x_out, ok)
        return x_out, iters_out, ok, strategy

    def _scaled_rhs(self, scale: float) -> np.ndarray:
        """The linear base rhs at source scale ``scale``, re-accumulated
        add-by-add in the captured stamp order (source adds scaled
        individually — bitwise the serial ``±(dc * scale)`` stamps)."""
        rhs = np.zeros(self.layout.size)
        if self._dc_rhs_rows.size:
            vals = np.where(self._dc_rhs_scaled,
                            self._dc_rhs_vals * scale, self._dc_rhs_vals)
            np.add.at(rhs, self._dc_rhs_rows, vals)
        return rhs

    def _stage_bases(self, rows: np.ndarray, gmin: float
                     ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Per-sample linear base arrays for one homotopy stage: the
        cached GMIN_FINAL bases with the gmin diagonal re-valued, exactly
        as the serial backends stamp a fresh system per stage (the gmin
        triplets sit behind the linear stamps, so only their value — not
        the accumulation order — changes)."""
        vals = self._dc_base_vals[rows]
        vals[:, self._dc_n_linear:] = gmin
        if self.sparse:
            return vals, None
        k = rows.size
        size = self.layout.size
        mats = np.zeros((k, size, size))
        samp = np.arange(k)[:, None]
        np.add.at(mats, (samp, self._dc_rows[None, :self._dc_n_linear],
                         self._dc_cols[None, :self._dc_n_linear]),
                  vals[:, :self._dc_n_linear])
        diag = np.arange(self.layout.n_nodes)
        mats[:, diag, diag] += gmin
        return vals, mats

    def _newton_stage(self, rows: np.ndarray, x0s: np.ndarray,
                      gmin: float, base_rhs: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One lockstep damped-Newton stage at fixed ``gmin`` and linear
        rhs, replicating ``dc._newton`` per sample.

        Returns ``(x, iterations, outcome)`` aligned with ``rows``;
        outcome 0 = converged, 1 = ConvergenceError-equivalent
        (non-finite update or iteration cap — the serial chain moves to
        its next strategy), 2 = singular matrix (the serial chain raises
        through; only the fallback reproduces that)."""
        k = rows.size
        nv = self.layout.n_nodes
        x = np.array(x0s, dtype=float)
        iters = np.zeros(k, dtype=int)
        out = np.full(k, -1, dtype=np.int8)  # -1 = still iterating
        if gmin == GMIN_FINAL:
            stage_vals = self._dc_base_vals
            stage_mats = self._dc_base_mats
            gather: Optional[np.ndarray] = rows
        else:
            stage_vals, stage_mats = self._stage_bases(rows, gmin)
            gather = None  # stage arrays already aligned with ``rows``
        for iteration in range(1, MAX_ITERATIONS + 1):
            active = np.nonzero(out == -1)[0]
            if active.size == 0:
                break
            xa = x[active]
            quantities = self._eval_mosfets_rows(xa, rows[active])
            x_new = np.empty_like(xa)
            solved = np.ones(active.size, dtype=bool)
            swaps = quantities["swapped"]
            keys = [np.packbits(row).tobytes() for row in swaps]
            groups: Dict[bytes, List[int]] = {}
            for i, key in enumerate(keys):
                groups.setdefault(key, []).append(i)
            for key, members in groups.items():
                sel = np.asarray(members, dtype=np.intp)
                spec = self._dc_spec(key, swaps[sel[0]])
                grp = gather[active[sel]] if gather is not None \
                    else active[sel]
                self._assemble_and_solve(
                    spec, stage_vals[grp],
                    stage_mats[grp] if stage_mats is not None else None,
                    base_rhs, sel, quantities, x_new, solved)
            # Per-sample damping/convergence, replicating dc._newton.
            finite = np.all(np.isfinite(x_new), axis=1)
            out[active[~solved]] = 2
            out[active[solved & ~finite]] = 1
            good = np.nonzero(solved & finite)[0]
            if good.size == 0:
                continue
            delta = x_new[good] - xa[good]
            step = np.max(np.abs(delta[:, :nv]), axis=1)
            damp = step > MAX_STEP_V
            grows = active[good]
            if np.any(damp):
                factor = (MAX_STEP_V / step[damp])[:, None]
                x[grows[damp]] = xa[good[damp]] + delta[damp] * factor
            accept = ~damp
            if np.any(accept):
                xn = x_new[good[accept]]
                x[grows[accept]] = xn
                limit = ABSTOL_V + RELTOL * np.max(
                    np.abs(xn[:, :nv]), axis=1)
                conv = step[accept] <= limit
                done = grows[accept][conv]
                out[done] = 0
                iters[done] = iteration
        out[out == -1] = 1  # iteration cap: next strategy takes over
        return x, iters, out

    def _assemble_and_solve(self, spec: _SigSpec, base_vals: np.ndarray,
                            base_mats: Optional[np.ndarray],
                            base_rhs: np.ndarray, local_rows: np.ndarray,
                            quantities: dict, x_new: np.ndarray,
                            solved: np.ndarray) -> None:
        """Assemble and solve the group's linear systems into
        ``x_new[local_rows]``.  ``base_vals``/``base_mats`` are the
        group's freshly-gathered per-sample linear bases (matching the
        stage's gmin; ``base_mats`` is mutated in place) and ``base_rhs``
        the stage's source rhs.  Samples whose solve fails are flagged in
        ``solved`` for the fallback."""
        k = local_rows.size
        size = self.layout.size
        q_stack = np.stack([quantities["gm"], quantities["gds"],
                            quantities["gmb"], quantities["gsum"]])
        nl_vals = (q_stack[spec.nl_qty[None, :], local_rows[:, None],
                           spec.nl_mos[None, :]]
                   * spec.nl_sign) if spec.nl_qty.size else \
            np.zeros((k, 0))
        rhs_vals = (quantities["ieq"][local_rows][:, spec.rhs_mos]
                    * spec.rhs_sign) if spec.rhs_rows.size else None
        samp = np.arange(k)[:, None]
        if self.sparse:
            # Serial sparse rhs: nonlinear adds accumulate from zero,
            # then base + tail in one elementwise add.
            rhs_nl = np.zeros((k, size))
            if rhs_vals is not None:
                np.add.at(rhs_nl, (samp, spec.rhs_rows[None, :]), rhs_vals)
            vals = np.empty((k, spec.rows.size))
            vals[:, :spec.n_base] = base_vals
            vals[:, spec.n_base:] = nl_vals
            rhs = base_rhs + rhs_nl
            pattern = spec.pattern
            context = (f"circuit {self.circuit.title!r} "
                       f"(floating node or source loop?)")
            for i in range(k):
                try:
                    lu = pattern.factor(pattern.fill(vals[i]), context)
                    x_new[local_rows[i]] = lu.solve(rhs[i])
                except SingularMatrixError:
                    solved[local_rows[i]] = False
        else:
            # Serial dense rhs: nonlinear adds accumulate ON TOP of the
            # base copy (a different association than the sparse path —
            # both are replicated exactly).
            mats = base_mats
            np.add.at(mats, (samp, spec.rows[None, spec.n_base:],
                             spec.cols[None, spec.n_base:]), nl_vals)
            rhs = np.tile(base_rhs, (k, 1))
            if rhs_vals is not None:
                np.add.at(rhs, (samp, spec.rhs_rows[None, :]), rhs_vals)
            try:
                # (k, m, 1) rhs: one LAPACK gesv per slice with a single
                # right-hand side — the same call the scalar path makes.
                x_new[local_rows] = np.linalg.solve(
                    mats, rhs[:, :, None])[:, :, 0]
            except np.linalg.LinAlgError:
                for i in range(k):
                    try:
                        x_new[local_rows[i]] = np.linalg.solve(mats[i],
                                                               rhs[i])
                    except np.linalg.LinAlgError:
                        solved[local_rows[i]] = False

    def _finalize(self, x: np.ndarray, ok: np.ndarray) -> None:
        """Evaluate all operating-point quantities at the converged
        solutions (the batched equivalent of materializing every
        device's ``operating_point`` record)."""
        self._x = x
        self._ok = ok
        rows = np.nonzero(ok)[0]
        fin = {"rows": rows}
        if rows.size:
            quantities = self._eval_mosfets_rows(x[rows], rows)
            cgs = np.empty((rows.size, self.n_mos))
            cgd = np.empty((rows.size, self.n_mos))
            for mp in self.mosfets:
                c_gs, c_gd, _, _ = intrinsic_capacitances_batch(
                    mp.model_t, mp.w_eff, mp.l,
                    quantities["region"][:, mp.index])
                cgs[:, mp.index] = c_gs
                cgd[:, mp.index] = c_gd
            quantities["cgs"] = cgs
            quantities["cgd"] = cgd
            fin.update(quantities)
        self._fin = fin
        self._fin_local = {int(r): i for i, r in enumerate(rows)}

    # -- injected-result assembly --------------------------------------------------
    def _op_record(self, k: int, name: str) -> Optional[dict]:
        kind = self._op_kinds.get(name)
        if kind is None:
            return None
        i = self._fin_local[k]
        fin = self._fin
        if kind[0] == "mos":
            j = kind[1]
            mp = self.mosfets[j]
            vds = float(fin["vds"][i, j])
            vdsat = float(fin["vdsat"][i, j])
            return {
                "ids": float(fin["ids"][i, j]),
                "gm": float(fin["gm"][i, j]),
                "gds": float(fin["gds"][i, j]),
                "gmb": float(fin["gmb"][i, j]),
                "vgs": float(fin["vgs"][i, j]),
                "vds": vds,
                "vbs": float(fin["vbs"][i, j]),
                "vth": float(fin["vth"][i, j]),
                "vdsat": vdsat,
                "vov": float(fin["vov"][i, j]),
                "region": REGION_NAMES[int(fin["region"][i, j])],
                "swapped": bool(fin["swapped"][i, j]),
                "cgs": float(fin["cgs"][i, j]),
                "cgd": float(fin["cgd"][i, j]),
                "cdb": mp.cj,
                "csb": mp.cj,
                "sat_margin": vds - vdsat,
            }
        j = kind[1]
        dev, tracked, nodes = self.resistors[j]
        x = self._x[k]
        v = (float(x[nodes[0]]) if nodes[0] >= 0 else 0.0) \
            - (float(x[nodes[1]]) if nodes[1] >= 0 else 0.0)
        resistance = float(self._res_r[k, j])
        i_r = v / resistance
        return {"v": v, "i": i_r, "power": v * i_r}

    def sample_circuit(self, k: int):
        """Circuit for chunk sample ``k``'s injected bench: the shared
        prototype when no resistor tracks the statistical sample, else a
        lazy per-sample view (see :class:`_LazySampleCircuit`).

        The view corrects tracked-resistor *values* only; MOSFET
        statistical perturbations are carried by the operating-point
        records, which is where every AC consumer reads them."""
        if not any(tracked for _, tracked, _ in self.resistors):
            return self.circuit
        return _LazySampleCircuit(self, k)

    def _sample_circuit(self, k: int) -> Circuit:
        clone = Circuit(self.circuit.title)
        for dev in self.circuit.devices:
            if isinstance(dev, Resistor):
                j = self._res_index[dev.name]
                if self.resistors[j][1]:
                    clone.add(Resistor(dev.name, dev.nodes[0], dev.nodes[1],
                                       float(self._res_r[k, j])))
                    continue
            clone.add(dev)
        return clone

    def dc_result(self, k: int, iterations: int,
                  strategy: str = "newton-warm") -> DCResult:
        """Injected :class:`DCResult` for chunk sample ``k`` — real
        result object, lazily materialized operating points.
        ``strategy`` is the winning homotopy label from :meth:`solve`."""
        result = DCResult(self.circuit, self.layout, self._x[k],
                          self.temp_c, iterations, strategy)
        result._ops = _LazyOps(self, k)
        return result

    def systems(self, k: int, op: DCResult) -> dict:
        """Pre-assembled differential and common-mode AC systems for
        chunk sample ``k``, keyed exactly as
        ``OpenLoopOpampBench._systems`` expects."""
        i = self._fin_local[k]
        fin = self._fin
        swaps = fin["swapped"][i]
        spec = self._ac_spec(np.packbits(swaps).tobytes(), swaps)
        g_vals = spec.g_const.copy()
        if spec.g_res_slots.size:
            g_vals[spec.g_res_slots] = \
                spec.g_res_sign * self._res_g[k, spec.g_res_idx]
        if spec.g_mos_slots.size:
            qg = np.stack([fin["gm"][i], fin["gds"][i], fin["gmb"][i],
                           fin["gsum"][i]])
            g_vals[spec.g_mos_slots] = \
                qg[spec.g_qty, spec.g_mos] * spec.g_sign
        b_vals = spec.b_const.copy()
        if spec.b_mos_slots.size:
            cdb = np.array([mp.cj for mp in self.mosfets])
            qb = np.stack([fin["cgs"][i], fin["cgd"][i], cdb, cdb])
            b_vals[spec.b_mos_slots] = \
                qb[spec.b_qty, spec.b_mos] * spec.b_sign
        rhs_dm = self._ac_rhs_static.copy()
        rhs_dm[self._drive_vip] += 0.5
        rhs_dm[self._drive_vin] += -0.5
        rhs_cm = self._ac_rhs_static.copy()
        rhs_cm[self._drive_vip] += 1.0
        rhs_cm[self._drive_vin] += 1.0
        if self.sparse:
            engine = object.__new__(SparseAcEngine)
            engine._circuit = self.circuit
            engine._layout = self.layout
            engine._pattern = spec.pattern
            vals = np.zeros(spec.rows.size, dtype=complex)
            vals[:spec.n_g] = g_vals
            engine._g_full = spec.pattern.fill(vals)
            vals[:] = 0.0
            vals[spec.n_g:] = b_vals
            engine._b_full = spec.pattern.fill(vals)
            engine.rhs = rhs_dm
            engine._lu_memo = [None, None]
        else:
            size = self.layout.size
            g_mat = np.zeros((size, size), dtype=complex)
            np.add.at(g_mat, (spec.rows[:spec.n_g], spec.cols[:spec.n_g]),
                      g_vals)
            b_mat = np.zeros((size, size), dtype=complex)
            np.add.at(b_mat, (spec.rows[spec.n_g:], spec.cols[spec.n_g:]),
                      b_vals)
            engine = object.__new__(DenseAcEngine)
            engine._circuit = self.circuit
            engine._layout = self.layout
            engine._g = g_mat
            engine._b = b_mat
            engine.rhs = rhs_dm
        engine_cm = engine.with_rhs(rhs_cm)
        return {(0.5, -0.5): self._wrap_system(engine),
                (1.0, 1.0): self._wrap_system(engine_cm)}

    def _wrap_system(self, engine) -> AcSystem:
        system = object.__new__(AcSystem)
        system._circuit = self.circuit
        system._layout = self.layout
        system._backend = self.backend
        system._engine = engine
        system._rhs = engine.rhs
        return system
