"""Circuit container and MNA layout.

A :class:`Circuit` is an ordered collection of devices plus node bookkeeping.
Node names are arbitrary strings; ``"0"`` and ``"gnd"`` (case-insensitive)
denote the ground reference and map to MNA index ``-1``.

The :class:`MnaLayout` assigns one MNA unknown per non-ground node plus one
per device branch current (voltage sources, inductors, VCVS), and is shared
by the DC, AC and transient engines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import NetlistError
from .devices import (Capacitor, Device, Inductor, Isource, Mosfet, Resistor,
                      Vcvs, Vccs, Vsource)
from .mos import MosModel

#: Node names (lower-cased) that denote the ground reference.
GROUND_NAMES = frozenset({"0", "gnd", "vss!"})


def is_ground(node: str) -> bool:
    """True if ``node`` names the ground reference."""
    return node.lower() in GROUND_NAMES


class MnaLayout:
    """Resolved index assignment for one circuit.

    Attributes
    ----------
    node_index:
        Mapping node name -> MNA index (ground maps to ``-1``).
    device_nodes / device_branches:
        Per-device resolved terminal and branch-current indices, in the
        circuit's device order.
    size:
        Total number of MNA unknowns.
    """

    def __init__(self, circuit: "Circuit"):
        self.node_index: Dict[str, int] = {}
        order: List[str] = []
        for dev in circuit.devices:
            for node in dev.nodes:
                if is_ground(node):
                    self.node_index[node] = -1
                elif node not in self.node_index:
                    self.node_index[node] = len(order)
                    order.append(node)
        self.node_names: Tuple[str, ...] = tuple(order)
        self.n_nodes = len(order)
        next_index = self.n_nodes
        self.device_nodes: List[Tuple[int, ...]] = []
        self.device_branches: List[Tuple[int, ...]] = []
        for dev in circuit.devices:
            self.device_nodes.append(
                tuple(self.node_index[n] for n in dev.nodes))
            branches = tuple(range(next_index, next_index + dev.n_branches))
            next_index += dev.n_branches
            self.device_branches.append(branches)
        self.size = next_index
        if self.size == 0:
            raise NetlistError("circuit has no MNA unknowns (empty circuit?)")
        #: Per-analysis-kind :class:`~repro.circuit.linsolve.SparsePattern`
        #: cache — the "one symbolic factorization per topology" store.
        #: Living on the layout ties its lifetime to the circuit's cached
        #: layout, so re-evaluations of one built circuit reuse patterns
        #: while distinct circuits never share them.
        self.sparse_patterns: Dict[str, object] = {}


class Circuit:
    """Ordered device container with convenience constructors.

    The ``resistor`` / ``capacitor`` / ... helpers create the device, check
    name uniqueness, add it to the circuit and return it, so testbench code
    reads like a netlist::

        ckt = Circuit("divider")
        ckt.vsource("VIN", "in", "0", dc=1.0)
        ckt.resistor("R1", "in", "out", 1e3)
        ckt.resistor("R2", "out", "0", 1e3)
    """

    def __init__(self, title: str = ""):
        self.title = title
        self.devices: List[Device] = []
        self._by_name: Dict[str, Device] = {}

    # -- container protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self):
        return iter(self.devices)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def device(self, name: str) -> Device:
        """Look up a device by instance name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise NetlistError(f"no device named {name!r} in circuit "
                               f"{self.title!r}") from None

    def add(self, device: Device) -> Device:
        """Add a pre-constructed device, enforcing unique names."""
        if device.name in self._by_name:
            raise NetlistError(f"duplicate device name {device.name!r}")
        self.devices.append(device)
        self._by_name[device.name] = device
        return device

    # -- convenience constructors ---------------------------------------------
    def resistor(self, name: str, a: str, b: str, resistance: float) -> Resistor:
        return self.add(Resistor(name, a, b, resistance))

    def capacitor(self, name: str, a: str, b: str, capacitance: float,
                  ic: Optional[float] = None) -> Capacitor:
        return self.add(Capacitor(name, a, b, capacitance, ic=ic))

    def inductor(self, name: str, a: str, b: str, inductance: float) -> Inductor:
        return self.add(Inductor(name, a, b, inductance))

    def vsource(self, name: str, p: str, n: str, dc: float = 0.0,
                ac: complex = 0.0, waveform=None) -> Vsource:
        return self.add(Vsource(name, p, n, dc=dc, ac=ac, waveform=waveform))

    def isource(self, name: str, p: str, n: str, dc: float = 0.0,
                ac: complex = 0.0, waveform=None) -> Isource:
        return self.add(Isource(name, p, n, dc=dc, ac=ac, waveform=waveform))

    def vcvs(self, name: str, p: str, n: str, cp: str, cn: str,
             gain: float) -> Vcvs:
        return self.add(Vcvs(name, p, n, cp, cn, gain))

    def vccs(self, name: str, p: str, n: str, cp: str, cn: str,
             gm: float) -> Vccs:
        return self.add(Vccs(name, p, n, cp, cn, gm))

    def mosfet(self, name: str, d: str, g: str, s: str, b: str,
               model: MosModel, w: float, l: float, m: int = 1,
               delta_vto: float = 0.0, beta_factor: float = 1.0) -> Mosfet:
        return self.add(Mosfet(name, d, g, s, b, model, w, l, m=m,
                               delta_vto=delta_vto, beta_factor=beta_factor))

    # -- queries ---------------------------------------------------------------
    @property
    def node_names(self) -> Tuple[str, ...]:
        """All non-ground node names in first-use order."""
        return self.layout().node_names

    def mosfets(self) -> List[Mosfet]:
        """All MOS transistors, in insertion order."""
        return [d for d in self.devices if isinstance(d, Mosfet)]

    def layout(self) -> MnaLayout:
        """Build (and cache per device count) the MNA layout."""
        cached = getattr(self, "_layout", None)
        if cached is not None and cached[0] == len(self.devices):
            return cached[1]
        layout = MnaLayout(self)
        self._layout = (len(self.devices), layout)
        return layout

    def validate(self) -> None:
        """Structural sanity checks: at least one ground connection and no
        single-ended floating nodes.  Raises :class:`NetlistError`."""
        grounded = any(is_ground(n) for dev in self.devices for n in dev.nodes)
        if not grounded:
            raise NetlistError(
                f"circuit {self.title!r} has no ground connection")
        touch: Dict[str, int] = {}
        for dev in self.devices:
            for node in dev.nodes:
                if not is_ground(node):
                    touch[node] = touch.get(node, 0) + 1
        lonely = sorted(n for n, count in touch.items() if count < 2)
        if lonely:
            raise NetlistError(
                f"circuit {self.title!r}: nodes connected to a single "
                f"terminal only: {', '.join(lonely)}")
