"""Specifications and operating ranges (Sec. 2 of the paper)."""

from .operating import (OperatingParameter, OperatingRange,
                        find_worst_case_operating_points, group_by_theta,
                        spec_key)
from .specification import (KINDS, Performance, Spec,
                            check_unique_performances)

__all__ = ["KINDS", "OperatingParameter", "OperatingRange", "Performance",
           "Spec", "check_unique_performances",
           "find_worst_case_operating_points", "group_by_theta", "spec_key"]
