"""Operating range Theta and worst-case operating points (Sec. 2, Eq. 2).

The parametric *operational* yield demands every spec hold over the whole
operating range (temperature, supply voltage, ...).  The paper exploits
that each performance typically takes its minimum at a *vertex* of the box
Theta (performances are monotone in temperature/supply to first order), so
the worst-case operating point theta_wc^(i) is found by evaluating the
corners (Eq. 2) — this is also what bounds the Monte-Carlo effort by
``N * min(n_spec, 2^dim(Theta))`` in Sec. 2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ..errors import SpecificationError
from .specification import Spec


@dataclass(frozen=True)
class OperatingParameter:
    """One operating-condition axis, e.g. temperature or supply voltage."""

    name: str
    low: float
    high: float
    nominal: float

    def __post_init__(self):
        if not self.low <= self.nominal <= self.high:
            raise SpecificationError(
                f"operating parameter {self.name!r}: nominal "
                f"{self.nominal} outside [{self.low}, {self.high}]")


class OperatingRange:
    """A box of operating parameters ``Theta = {theta | low <= theta <= high}``."""

    def __init__(self, parameters: Sequence[OperatingParameter]):
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise SpecificationError("duplicate operating parameter names")
        self.parameters: Tuple[OperatingParameter, ...] = tuple(parameters)

    @property
    def dim(self) -> int:
        return len(self.parameters)

    def nominal(self) -> Dict[str, float]:
        """The nominal operating point."""
        return {p.name: p.nominal for p in self.parameters}

    def corners(self) -> List[Dict[str, float]]:
        """All ``2^dim`` vertices of the operating box."""
        axes = [(p.name, (p.low, p.high)) for p in self.parameters]
        result = []
        for values in itertools.product(*(v for _, v in axes)):
            result.append({name: value
                           for (name, _), value in zip(axes, values)})
        return result

    def corner_key(self, theta: Mapping[str, float]) -> Tuple[float, ...]:
        """Hashable identity of an operating point (for grouping specs that
        share a worst-case corner)."""
        return tuple(theta[p.name] for p in self.parameters)


def find_worst_case_operating_points(
    evaluate: Callable[[Mapping[str, float]], Mapping[str, float]],
    specs: Sequence[Spec],
    operating_range: OperatingRange,
    include_nominal: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Worst-case operating point per spec (Eq. 2), by corner enumeration.

    ``evaluate(theta)`` must return all performance values at the fixed
    current design/statistical point.  For each spec the corner (optionally
    including the nominal point) with the smallest normalized margin is
    selected.  Returns spec-performance+kind key -> theta dict.

    The number of ``evaluate`` calls is ``2^dim (+1)``, matching the
    paper's effort bound.
    """
    candidates = operating_range.corners()
    if include_nominal:
        candidates.append(operating_range.nominal())
    evaluations = [(theta, evaluate(theta)) for theta in candidates]
    worst: Dict[str, Dict[str, float]] = {}
    for spec in specs:
        best_theta = None
        best_margin = None
        for theta, performances in evaluations:
            if spec.performance not in performances:
                raise SpecificationError(
                    f"evaluation is missing performance "
                    f"{spec.performance!r}")
            margin = spec.margin(performances[spec.performance])
            if best_margin is None or margin < best_margin:
                best_margin = margin
                best_theta = theta
        worst[spec_key(spec)] = dict(best_theta)
    return worst


def spec_key(spec: Spec) -> str:
    """Stable string key for a spec (used to index worst-case data)."""
    return f"{spec.performance}{spec.kind}"


def group_by_theta(
    worst_case: Mapping[str, Mapping[str, float]],
    operating_range: OperatingRange,
) -> Dict[Tuple[float, ...], List[str]]:
    """Group spec keys by identical worst-case operating point.

    Used by the Monte-Carlo verifier to run one simulation per distinct
    corner instead of one per spec (the ``N*`` remark of Sec. 2).
    """
    groups: Dict[Tuple[float, ...], List[str]] = {}
    for key, theta in worst_case.items():
        corner = operating_range.corner_key(theta)
        groups.setdefault(corner, []).append(key)
    return groups
