"""Performance and specification declarations.

A *performance* is a named circuit quantity (DC gain, transit frequency,
...) in presentation units (dB, MHz, ...).  A *specification* bounds one
performance from below (``>=``) or above (``<=``).

The paper writes every spec as ``f >= f_b`` (Sec. 2); upper bounds are
handled by the *normalized* view ``g = -f >= -f_b``, so all algorithmic
code (worst-case search, linearization, yield estimation) only ever sees
lower bounds.  :meth:`Spec.normalize` performs that mapping and
:meth:`Spec.margin` gives the signed pass margin in presentation units
(positive = satisfied), which is what the paper's tables print in their
``f - f_b`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import SpecificationError

#: Valid comparison kinds.
KINDS = (">=", "<=")


@dataclass(frozen=True)
class Performance:
    """A named circuit performance in presentation units."""

    name: str
    unit: str = ""
    description: str = ""


@dataclass(frozen=True)
class Spec:
    """One specification: ``performance >= bound`` or ``<= bound``."""

    performance: str
    kind: str
    bound: float

    def __post_init__(self):
        if self.kind not in KINDS:
            raise SpecificationError(
                f"spec on {self.performance!r}: kind must be '>=' or '<=', "
                f"got {self.kind!r}")

    @property
    def sign(self) -> float:
        """+1 for lower bounds, -1 for upper bounds."""
        return 1.0 if self.kind == ">=" else -1.0

    def margin(self, value: float) -> float:
        """Signed margin in presentation units; positive = spec satisfied.

        This is the quantity the paper tabulates as ``f^(i) - f_b^(i)``
        (for upper bounds the tables print ``f_b - f``, which this returns).
        """
        return self.sign * (value - self.bound)

    def passes(self, value: float) -> bool:
        """True if ``value`` satisfies the spec."""
        return self.margin(value) >= 0.0

    def normalize(self, value: float) -> float:
        """Map to the internal lower-bound convention ``g >= g_b``."""
        return self.sign * value

    @property
    def normalized_bound(self) -> float:
        """The bound in the internal lower-bound convention."""
        return self.sign * self.bound

    def denormalize(self, g_value: float) -> float:
        """Inverse of :meth:`normalize`."""
        return self.sign * g_value

    def __str__(self) -> str:
        return f"{self.performance} {self.kind} {self.bound:g}"


def check_unique_performances(specs: Tuple[Spec, ...]) -> None:
    """Raise if two specs bound the same performance in the same direction.

    One performance may legitimately carry both a lower and an upper bound;
    duplicate identical-direction bounds indicate a setup error.
    """
    seen = set()
    for spec in specs:
        key = (spec.performance, spec.kind)
        if key in seen:
            raise SpecificationError(
                f"duplicate specification {spec.performance} {spec.kind}")
        seen.add(key)
