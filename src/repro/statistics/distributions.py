"""Scalar distributions and their transform to the standard normal.

Section 2 of the paper notes that the commonly used normal, log-normal and
uniform parameter distributions "can be transformed into a normal
(Gaussian) distribution", so the rest of the algorithm only handles
``N(0, I)``.  These classes implement that transform explicitly via the
probability-integral mapping: ``to_normal`` sends a sample of the
distribution to an equivalent standard-normal quantile, ``from_normal``
is its inverse, and ``from_normal(z) with z ~ N(0,1)`` reproduces the
original distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import erf, erfinv

from ..errors import ReproError

_SQRT2 = math.sqrt(2.0)


def _std_normal_cdf(z: float) -> float:
    return 0.5 * (1.0 + erf(z / _SQRT2))


def _std_normal_quantile(p: float) -> float:
    if not 0.0 < p < 1.0:
        raise ReproError(f"quantile argument must be in (0, 1), got {p}")
    return _SQRT2 * float(erfinv(2.0 * p - 1.0))


@dataclass(frozen=True)
class Normal:
    """Gaussian distribution ``N(mean, sigma^2)``."""

    mean: float = 0.0
    sigma: float = 1.0

    def __post_init__(self):
        if self.sigma <= 0:
            raise ReproError("Normal: sigma must be positive")

    def from_normal(self, z: float) -> float:
        """Map a standard-normal quantile to a sample of this distribution."""
        return self.mean + self.sigma * z

    def to_normal(self, x: float) -> float:
        """Map a sample of this distribution to its standard-normal quantile."""
        return (x - self.mean) / self.sigma


@dataclass(frozen=True)
class LogNormal:
    """Log-normal distribution: ``exp(N(mu, sigma^2))``."""

    mu: float = 0.0
    sigma: float = 1.0

    def __post_init__(self):
        if self.sigma <= 0:
            raise ReproError("LogNormal: sigma must be positive")

    def from_normal(self, z: float) -> float:
        return math.exp(self.mu + self.sigma * z)

    def to_normal(self, x: float) -> float:
        if x <= 0:
            raise ReproError(f"LogNormal samples are positive, got {x}")
        return (math.log(x) - self.mu) / self.sigma


@dataclass(frozen=True)
class Uniform:
    """Uniform distribution on ``[low, high]``.

    The transform clips an epsilon away from the interval ends so that
    boundary samples map to finite (if large) normal quantiles.
    """

    low: float
    high: float

    _EDGE = 1e-12

    def __post_init__(self):
        if self.high <= self.low:
            raise ReproError("Uniform: high must exceed low")

    def from_normal(self, z: float) -> float:
        p = _std_normal_cdf(z)
        return self.low + (self.high - self.low) * p

    def to_normal(self, x: float) -> float:
        if not self.low <= x <= self.high:
            raise ReproError(
                f"Uniform sample {x} outside [{self.low}, {self.high}]")
        p = (x - self.low) / (self.high - self.low)
        p = min(max(p, self._EDGE), 1.0 - self._EDGE)
        return _std_normal_quantile(p)
