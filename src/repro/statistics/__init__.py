"""Statistical modeling: distributions, mismatch, and the Sec. 4 transform.

* :mod:`repro.statistics.distributions` — normal / log-normal / uniform
  with exact transforms to the standard normal (Sec. 2),
* :mod:`repro.statistics.space` — the joint global+local parameter space
  with design-dependent covariance ``C(d)`` and the ``G(d)`` normalization
  of Eq. 11-12,
* :mod:`repro.statistics.sampling` — seeded, reusable Monte-Carlo sample
  sets in normalized coordinates.
"""

from .distributions import LogNormal, Normal, Uniform
from .intervals import normal_interval, wilson_interval, z_quantile
from .sampling import SampleSet
from .space import (DeviceGeometry, LocalVariation, PhysicalVariations,
                    StatisticalSpace)

__all__ = ["DeviceGeometry", "LocalVariation", "LogNormal", "Normal",
           "PhysicalVariations", "SampleSet", "StatisticalSpace", "Uniform",
           "normal_interval", "wilson_interval", "z_quantile"]
