"""Confidence intervals for yield (binomial proportion) estimates.

The plain binomial standard error ``sqrt(y (1-y) / N)`` collapses to zero
when the estimate is exactly 0 or 1 — precisely the regimes the paper's
ablations land in (Tables 3/4: true yield stays at 0 %), where a small-N
Monte-Carlo run then misreports certainty.  The Wilson score interval
stays honest there: at ``k = 0`` of ``N`` its upper edge is
``z^2 / (N + z^2)`` (~1.3 % for N = 300 at 95 %), the correct "we could
easily have missed a ~1 % yield" statement.

Importance-sampling estimates are not binomial; for those the delta-method
normal interval on the self-normalized estimator applies
(:func:`normal_interval`).
"""

from __future__ import annotations

from typing import Tuple

import math

from scipy.special import ndtri

from ..errors import ReproError


def z_quantile(level: float) -> float:
    """Two-sided standard-normal quantile for a confidence ``level``,
    e.g. 1.959964 for ``level = 0.95``."""
    if not 0.0 < level < 1.0:
        raise ReproError(f"confidence level must be in (0, 1), got {level}")
    return float(ndtri(1.0 - (1.0 - level) / 2.0))


def wilson_interval(successes: float, n: int, level: float = 0.95
                    ) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    ``successes`` may be fractional (rounded estimates upstream); ``n``
    must be non-negative.  Returns ``(low, high)`` clipped to [0, 1].
    An empty stream (``n == 0`` with zero successes) carries no
    information, so it yields the degenerate full interval ``(0, 1)``
    instead of raising — the honest statement for a zero-sample batch.
    """
    if n < 0:
        raise ReproError(f"Wilson interval needs n >= 0, got {n}")
    if n == 0:
        if successes != 0:
            raise ReproError(
                f"successes {successes} outside [0, {n}]")
        return (0.0, 1.0)
    if not 0.0 <= successes <= n:
        raise ReproError(
            f"successes {successes} outside [0, {n}]")
    z = z_quantile(level)
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
    # At exactly 0 or 1 the analytic edge is 0 or 1; keep it exact
    # instead of leaving float rounding residue.
    low = 0.0 if successes == 0 else max(0.0, center - half)
    high = 1.0 if successes == n else min(1.0, center + half)
    return (low, high)


def normal_interval(estimate: float, standard_error: float,
                    level: float = 0.95) -> Tuple[float, float]:
    """Normal-approximation interval ``estimate +- z * se`` clipped to
    [0, 1] (for weighted/self-normalized estimators where the binomial
    model does not apply)."""
    z = z_quantile(level)
    half = z * max(standard_error, 0.0)
    return (max(0.0, estimate - half), min(1.0, estimate + half))
