"""Statistical parameter space with design-dependent covariance (Sec. 4).

The paper's central modeling point: with local variations the covariance
``C(d)`` of the statistical parameters depends on the design point, because
``sigma^2(dVth) ~ 1/(W L)`` (Pelgrom).  Equations (11)-(12) remove this
dependence from the probability measure by substituting

    s = G(d) * s_hat + s0,        G(d) G(d)^T = C(d),

so that ``s_hat ~ N(0, I)`` regardless of ``d`` and the design dependence
moves into the performance function ``f_hat(d, s_hat) = f(d, s(s_hat))``.

:class:`StatisticalSpace` owns that transform.  The algorithmic layers
(worst-case search, linearization, yield estimation) work exclusively in
normalized ``s_hat`` coordinates; circuit templates receive the *physical*
perturbations via :meth:`StatisticalSpace.to_physical`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ReproError
from ..pdk.process import Process


@dataclass(frozen=True)
class DeviceGeometry:
    """Geometry of one transistor, possibly bound to design parameters.

    ``w`` and ``l`` are either design-parameter *names* (resolved against
    the design dict at evaluation time) or fixed values in meters.  This is
    how ``C(d)`` acquires its design dependence.

    ``x``/``y`` optionally place the device on the die (meters); they feed
    the Pelgrom *distance* term when the space is built with
    ``with_gradient=True`` (the paper neglects this term per its ref. [1];
    it is provided as an extension).
    """

    w: Union[str, float]
    l: Union[str, float]
    m: int = 1
    x: float = 0.0
    y: float = 0.0

    def resolve(self, d: Mapping[str, float]) -> Tuple[float, float, int]:
        """Return concrete ``(w, l, m)`` in meters for design point ``d``."""
        def resolve_one(value: Union[str, float]) -> float:
            if isinstance(value, str):
                if value not in d:
                    raise ReproError(
                        f"geometry refers to unknown design parameter "
                        f"{value!r}")
                return float(d[value])
            return float(value)

        w = resolve_one(self.w)
        l = resolve_one(self.l)
        if w <= 0 or l <= 0:
            raise ReproError(f"non-positive geometry w={w}, l={l}")
        return w, l, self.m


@dataclass(frozen=True)
class LocalVariation:
    """One local (mismatch) statistical parameter.

    Perturbs a single device: ``kind = "vth"`` adds to its threshold
    magnitude, ``kind = "beta"`` scales its gain factor by ``1 + value``.
    The standard deviation follows the process Pelgrom coefficients and the
    device geometry, hence depends on the design point.
    """

    name: str
    device: str
    kind: str  # "vth" | "beta"
    polarity: int  # +1 NMOS, -1 PMOS
    geometry: DeviceGeometry

    def __post_init__(self):
        if self.kind not in ("vth", "beta"):
            raise ReproError(f"local variation {self.name!r}: kind must be "
                             f"'vth' or 'beta', got {self.kind!r}")

    def sigma(self, process: Process, d: Mapping[str, float]) -> float:
        """Physical standard deviation at design point ``d``."""
        w, l, m = self.geometry.resolve(d)
        if self.kind == "vth":
            return process.pelgrom.sigma_vth(self.polarity, w, l, m)
        return process.pelgrom.sigma_beta(self.polarity, w, l, m)


@dataclass
class PhysicalVariations:
    """Physical perturbations for one statistical sample.

    ``global_values`` maps global-parameter name -> physical value;
    ``device_delta_vto`` / ``device_beta_factor`` map device name -> the
    values a circuit template feeds into :class:`repro.circuit.Mosfet`
    (already combining global and local contributions);
    ``resistance_factor`` multiplies every resistor value (global sheet
    resistance variation).
    """

    global_values: Dict[str, float]
    device_delta_vto: Dict[str, float]
    device_beta_factor: Dict[str, float]
    resistance_factor: float = 1.0

    def delta_vto(self, device: str) -> float:
        return self.device_delta_vto.get(device, 0.0)

    def beta_factor(self, device: str) -> float:
        return self.device_beta_factor.get(device, 1.0)


class StatisticalSpace:
    """Joint space of global and local statistical parameters.

    Parameters are ordered globals-first, locals-second.  All public
    methods speak *normalized* coordinates ``s_hat ~ N(0, I)``; the
    design-dependent scaling ``G(d)`` is applied internally.
    """

    def __init__(self, process: Process,
                 local_variations: Sequence[LocalVariation] = (),
                 with_global: bool = True,
                 device_polarities: Optional[Mapping[str, int]] = None,
                 with_gradient: bool = False):
        self.process = process
        self.with_global = with_global
        self.with_gradient = with_gradient
        self.local_variations = tuple(local_variations)
        if with_gradient and not self.local_variations:
            raise ReproError(
                "with_gradient=True requires local variations (the "
                "gradient acts through their device positions)")
        names = []
        if with_global:
            names.extend(process.global_names)
        seen = set(names)
        for lv in self.local_variations:
            if lv.name in seen:
                raise ReproError(f"duplicate statistical parameter "
                                 f"{lv.name!r}")
            seen.add(lv.name)
            names.append(lv.name)
        if with_gradient:
            names.extend(("grad_vth_x", "grad_vth_y"))
        self.names: Tuple[str, ...] = tuple(names)
        self.n_global = len(process.global_names) if with_global else 0
        self.n_local = len(self.local_variations)
        self.n_gradient = 2 if with_gradient else 0
        #: device name -> polarity, for applying global vth/beta targets;
        #: defaults to the polarity recorded in the local variations.
        self.device_polarities: Dict[str, int] = dict(device_polarities or {})
        for lv in self.local_variations:
            self.device_polarities.setdefault(lv.device, lv.polarity)
        if with_global:
            cov = process.global_covariance()
            self._global_transform = np.linalg.cholesky(cov)
        else:
            self._global_transform = np.zeros((0, 0))

    @property
    def dim(self) -> int:
        return self.n_global + self.n_local + self.n_gradient

    def index(self, name: str) -> int:
        """Index of a statistical parameter by name."""
        try:
            return self.names.index(name)
        except ValueError:
            raise ReproError(f"unknown statistical parameter {name!r}") \
                from None

    def local_sigmas(self, d: Mapping[str, float]) -> np.ndarray:
        """Per-local-parameter physical sigmas at design point ``d``."""
        return np.array([lv.sigma(self.process, d)
                         for lv in self.local_variations])

    def covariance(self, d: Mapping[str, float]) -> np.ndarray:
        """Physical covariance matrix ``C(d)`` (globals block + local diag)."""
        n = self.dim
        cov = np.zeros((n, n))
        ng = self.n_global
        if ng:
            cov[:ng, :ng] = self.process.global_covariance()
        if self.n_local:
            sig = self.local_sigmas(d)
            nl = self.n_local
            cov[ng:ng + nl, ng:ng + nl] = np.diag(sig**2)
        if self.n_gradient:
            svt = self.process.pelgrom.svt
            cov[-2:, -2:] = np.eye(2) * svt**2
        return cov

    def transform_matrix(self, d: Mapping[str, float]) -> np.ndarray:
        """The factor ``G(d)`` with ``G G^T = C(d)`` (Eq. 11).

        Globals use the Cholesky factor of their (constant) covariance;
        locals are independent, so their block is diagonal with the
        Pelgrom sigmas of design point ``d``.
        """
        n = self.dim
        g = np.zeros((n, n))
        ng = self.n_global
        if ng:
            g[:ng, :ng] = self._global_transform
        if self.n_local:
            sig = self.local_sigmas(d)
            nl = self.n_local
            g[ng:ng + nl, ng:ng + nl] = np.diag(sig)
        if self.n_gradient:
            svt = self.process.pelgrom.svt
            g[-2:, -2:] = np.eye(2) * svt
        return g

    def to_physical(self, d: Mapping[str, float],
                    s_hat: np.ndarray) -> PhysicalVariations:
        """Apply ``s = G(d) s_hat`` and split into device perturbations."""
        s_hat = np.asarray(s_hat, dtype=float)
        if s_hat.shape != (self.dim,):
            raise ReproError(
                f"statistical vector has shape {s_hat.shape}, expected "
                f"({self.dim},)")
        s_phys = self.transform_matrix(d) @ s_hat

        global_values: Dict[str, float] = {}
        vth_shift = {1: 0.0, -1: 0.0}
        beta_shift = {1: 0.0, -1: 0.0}
        resistance_factor = 1.0
        if self.with_global:
            for gv, value in zip(self.process.global_variations,
                                 s_phys[:self.n_global]):
                global_values[gv.name] = float(value)
                if gv.target == "vth_nmos":
                    vth_shift[1] += value
                elif gv.target == "vth_pmos":
                    vth_shift[-1] += value
                elif gv.target == "beta_nmos":
                    beta_shift[1] += value
                elif gv.target == "beta_pmos":
                    beta_shift[-1] += value
                elif gv.target == "res":
                    resistance_factor *= 1.0 + value
        # Multiplicative factors must stay physical even when an optimizer
        # probes the extreme tails of the distribution (many sigmas out).
        resistance_factor = max(resistance_factor, 0.05)

        delta_vto: Dict[str, float] = {}
        beta_factor: Dict[str, float] = {}
        for device, polarity in self.device_polarities.items():
            delta_vto[device] = float(vth_shift[polarity])
            beta_factor[device] = float(1.0 + beta_shift[polarity])
        ng = self.n_global
        for lv, value in zip(self.local_variations,
                             s_phys[ng:ng + self.n_local]):
            if lv.kind == "vth":
                delta_vto[lv.device] = delta_vto.get(lv.device, 0.0) \
                    + float(value)
            else:
                beta_factor[lv.device] = beta_factor.get(lv.device, 1.0) \
                    * float(1.0 + value)
        if self.n_gradient:
            # Die-level threshold gradient (the Pelgrom distance term):
            # every positioned device picks up gx*x + gy*y on top of its
            # area-law local variation.
            gx, gy = s_phys[-2], s_phys[-1]
            for lv in self.local_variations:
                if lv.kind != "vth":
                    continue
                shift = float(gx * lv.geometry.x + gy * lv.geometry.y)
                delta_vto[lv.device] = delta_vto.get(lv.device, 0.0) + shift
        beta_factor = {device: max(value, 0.05)
                       for device, value in beta_factor.items()}
        return PhysicalVariations(global_values, delta_vto, beta_factor,
                                  resistance_factor=resistance_factor)

    def nominal(self) -> np.ndarray:
        """The nominal statistical point ``s_hat = 0``."""
        return np.zeros(self.dim)
