"""Seeded Monte-Carlo sampling in normalized statistical coordinates.

Everything downstream of the Sec. 4 transform works on ``s_hat ~ N(0, I)``,
so sampling is simply a matrix of standard-normal draws.  A dedicated class
keeps the sample set explicit: the paper evaluates the *same* N samples on
the linearized models throughout one optimization pass (Eq. 17), so samples
must be drawn once and reused, not regenerated per yield query.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ReproError


class SampleSet:
    """An immutable matrix of ``n`` standard-normal samples of dimension
    ``dim`` (one sample per row)."""

    def __init__(self, samples: np.ndarray):
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2:
            raise ReproError("samples must be a 2-D array (n, dim)")
        self._samples = samples
        self._samples.setflags(write=False)

    @classmethod
    def draw(cls, n: int, dim: int, seed: Optional[int] = None
             ) -> "SampleSet":
        """Draw ``n`` i.i.d. ``N(0, I_dim)`` samples with a fixed seed."""
        if n <= 0 or dim <= 0:
            raise ReproError(f"invalid sample-set shape ({n}, {dim})")
        rng = np.random.default_rng(seed)
        return cls(rng.standard_normal((n, dim)))

    @property
    def n(self) -> int:
        return self._samples.shape[0]

    @property
    def dim(self) -> int:
        return self._samples.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """The (n, dim) sample matrix (read-only view)."""
        return self._samples

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> np.ndarray:
        return self._samples[index]

    def __iter__(self):
        return iter(self._samples)
