"""Seeded Monte-Carlo sampling in normalized statistical coordinates.

Everything downstream of the Sec. 4 transform works on ``s_hat ~ N(0, I)``,
so sampling is simply a matrix of standard-normal draws.  A dedicated class
keeps the sample set explicit: the paper evaluates the *same* N samples on
the linearized models throughout one optimization pass (Eq. 17), so samples
must be drawn once and reused, not regenerated per yield query.
"""

from __future__ import annotations

import math
import warnings
from typing import Optional

import numpy as np

from ..errors import ReproError


class SampleSet:
    """An immutable matrix of ``n`` standard-normal samples of dimension
    ``dim`` (one sample per row)."""

    def __init__(self, samples: np.ndarray):
        # Copy unconditionally: np.asarray on a float ndarray returns the
        # *same* object, and freezing that would mutate the caller's array.
        samples = np.array(samples, dtype=float, copy=True)
        if samples.ndim != 2:
            raise ReproError("samples must be a 2-D array (n, dim)")
        self._samples = samples
        self._samples.setflags(write=False)

    @classmethod
    def draw(cls, n: int, dim: int, seed: Optional[int] = None
             ) -> "SampleSet":
        """Draw ``n`` i.i.d. ``N(0, I_dim)`` samples with a fixed seed."""
        if n <= 0 or dim <= 0:
            raise ReproError(f"invalid sample-set shape ({n}, {dim})")
        rng = np.random.default_rng(seed)
        return cls(rng.standard_normal((n, dim)))

    @classmethod
    def draw_sobol(cls, n: int, dim: int, seed: Optional[int] = None,
                   scramble: bool = True, skip: int = 0) -> "SampleSet":
        """Draw ``n`` scrambled-Sobol points mapped to ``N(0, I_dim)``.

        Low-discrepancy points cover the unit cube far more evenly than
        i.i.d. draws, so the inverse-CDF image covers the standard normal
        evenly too; for smooth integrands the quadrature error decays
        close to ``O(1/n)`` instead of the Monte-Carlo ``O(1/sqrt(n))``.
        Owen scrambling (the default) keeps the estimate unbiased and
        seed-reproducible.  Powers of two for ``n`` preserve the digital-net
        balance and are recommended.

        ``skip`` fast-forwards past the first ``skip`` points of the
        (seed-determined) sequence before taking ``n``: the sharded
        verification draws consecutive disjoint blocks of one sequence,
        so the shards concatenate to exactly the unsharded point set.
        """
        if n <= 0 or dim <= 0:
            raise ReproError(f"invalid sample-set shape ({n}, {dim})")
        if skip < 0:
            raise ReproError(f"skip must be >= 0, got {skip}")
        from scipy.stats import qmc
        from scipy.special import ndtri
        engine = qmc.Sobol(d=dim, scramble=scramble, seed=seed)
        if skip == 0 and n & (n - 1) == 0:
            u = engine.random_base2(int(math.log2(n)))
        else:
            with warnings.catch_warnings():
                # scipy warns about unbalanced (non power-of-two) sizes;
                # that is the caller's explicit choice here.
                warnings.simplefilter("ignore", UserWarning)
                if skip:
                    engine.fast_forward(skip)
                u = engine.random(n)
        # Keep the inverse CDF finite (unscrambled nets contain u = 0).
        eps = np.finfo(float).tiny
        u = np.clip(u, eps, 1.0 - np.finfo(float).epsneg)
        return cls(ndtri(u))

    @property
    def n(self) -> int:
        return self._samples.shape[0]

    @property
    def dim(self) -> int:
        return self._samples.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """The (n, dim) sample matrix (read-only view)."""
        return self._samples

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> np.ndarray:
        return self._samples[index]

    def __iter__(self):
        return iter(self._samples)
